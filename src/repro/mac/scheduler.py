"""Joint-transmission scheduling (§9).

"MegaMIMO always uses the packet at the head of the queue for transmission,
and nominates the designated AP of this packet as the lead AP for this
transmission.  The lead AP then chooses additional packets for joint
transmission with this packet in order to maximize the network throughput."

The paper leaves the grouping heuristic open ([43, 33, 42]); we implement
the natural greedy rule — walk the queue in FIFO order and admit the first
packet of each distinct client until the stream budget (total AP antennas)
is filled — plus a hook for custom heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.mac.queue import DownlinkQueue, Packet
from repro.utils.validation import require


@dataclass
class TransmissionGroup:
    """One joint transmission's worth of packets.

    Attributes:
        lead_ap: AP index elected lead (designated AP of the head packet).
        packets: Packets sent concurrently, one per distinct client.
    """

    lead_ap: int
    packets: List[Packet]

    @property
    def n_streams(self) -> int:
        return len(self.packets)

    @property
    def clients(self) -> List[int]:
        return [p.client for p in self.packets]


class JointScheduler:
    """Builds transmission groups from the shared downlink queue.

    Args:
        queue: The shared downlink queue.
        max_streams: Stream budget — the total number of AP antennas in the
            joint transmission (N single-antenna APs -> N streams).
        grouping: Optional custom heuristic ``f(head, candidates, budget) ->
            packets`` replacing the greedy FIFO rule.
    """

    def __init__(
        self,
        queue: DownlinkQueue,
        max_streams: int,
        grouping: Optional[Callable] = None,
    ):
        require(max_streams >= 1, "need at least one stream")
        self.queue = queue
        self.max_streams = max_streams
        self.grouping = grouping

    def next_group(self) -> Optional[TransmissionGroup]:
        """Form the next joint transmission; None if the queue is empty.

        The selected packets are removed from the queue; unACKed packets
        should be handed back via ``queue.requeue``.
        """
        head = self.queue.head()
        if head is None:
            return None
        candidates = [p for p in self.queue if p is not head]
        if self.grouping is not None:
            chosen = self.grouping(head, candidates, self.max_streams)
            require(head in chosen, "grouping must include the head packet")
        else:
            chosen = [head]
            seen = {head.client}
            for packet in candidates:
                if len(chosen) >= self.max_streams:
                    break
                if packet.client in seen:
                    continue
                chosen.append(packet)
                seen.add(packet.client)
        for packet in chosen:
            self.queue.remove(packet)
        return TransmissionGroup(lead_ap=head.designated_ap, packets=chosen)
