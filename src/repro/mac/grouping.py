"""Joint-transmission grouping heuristics (§9's deferred design choice).

"The lead AP then chooses additional packets for joint transmission with
this packet in order to maximize the network throughput.  There are a
variety of heuristics [43, 33, 42] that can be adopted ... we leave the
exact algorithm for making this choice for future work."

This module implements that future work:

* ``GreedyFifoGrouping`` — the baseline rule (first packet per distinct
  client in FIFO order), identical to the scheduler's default;
* ``ThroughputAwareGrouping`` — greedy sum-rate maximization: starting from
  the head packet's client, repeatedly admit the candidate whose addition
  maximizes the estimated post-ZF sum rate, stopping when adding anyone
  would reduce it.  Fewer well-conditioned streams can beat a full house —
  admitting a client nearly collinear with another collapses the ZF power
  scalar k for everyone.

Both are callables compatible with ``JointScheduler(grouping=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.beamforming import zero_forcing_precoder_wideband
from repro.mac.queue import Packet
from repro.mac.rate import EffectiveSnrRateSelector
from repro.utils.units import linear_to_db
from repro.utils.validation import require


@dataclass
class GreedyFifoGrouping:
    """The default rule, as a named object for ablations."""

    def __call__(self, head: Packet, candidates: Sequence[Packet], budget: int):
        chosen = [head]
        seen = {head.client}
        for packet in candidates:
            if len(chosen) >= budget:
                break
            if packet.client in seen:
                continue
            chosen.append(packet)
            seen.add(packet.client)
        return chosen


class ThroughputAwareGrouping:
    """Greedy sum-rate-maximizing admission.

    Args:
        channels: (n_bins, n_clients, n_aps) channel tensor from the last
            sounding — the lead AP has it ("APs in MegaMIMO know the full
            channel matrix H prior to transmission", §9).
        selector: Rate selector used to score candidate groups.
        noise_power: Receiver noise power.
    """

    def __init__(
        self,
        channels: np.ndarray,
        selector: EffectiveSnrRateSelector,
        noise_power: float = 1.0,
    ):
        channels = np.asarray(channels, dtype=complex)
        require(channels.ndim == 3, "need (n_bins, n_clients, n_aps)")
        self.channels = channels
        self.selector = selector
        self.noise_power = float(noise_power)
        self.n_clients = channels.shape[1]
        self.n_aps = channels.shape[2]

    def group_sum_rate(self, clients: Sequence[int]) -> float:
        """Estimated total goodput of jointly serving ``clients``.

        With the paper's shared power scalar every stream sees SNR k^2/N0,
        so the sum rate is len(clients) * rate(k^2/N0).
        """
        clients = list(clients)
        require(clients, "need at least one client")
        if len(clients) > self.n_aps:
            return 0.0
        sub = self.channels[:, clients, :]
        try:
            _, k = zero_forcing_precoder_wideband(sub)
        except np.linalg.LinAlgError:
            return 0.0
        snr_db = float(linear_to_db(k**2 / self.noise_power))
        return len(clients) * self.selector.goodput(snr_db)

    def __call__(self, head: Packet, candidates: Sequence[Packet], budget: int):
        chosen = [head]
        clients = [head.client]
        best_rate = self.group_sum_rate(clients)
        # first packet per distinct client, FIFO order within a client
        pool: List[Packet] = []
        seen = {head.client}
        for packet in candidates:
            if packet.client not in seen:
                pool.append(packet)
                seen.add(packet.client)

        while pool and len(chosen) < budget:
            scores = [
                self.group_sum_rate(clients + [p.client]) for p in pool
            ]
            idx = int(np.argmax(scores))
            if scores[idx] <= best_rate:
                break  # admitting anyone would hurt the sum rate
            best_rate = scores[idx]
            chosen.append(pool.pop(idx))
            clients.append(chosen[-1].client)
        return chosen
