"""The wired backend connecting MegaMIMO APs (§3, §9).

"MegaMIMO APs are connected by a high throughput backend, say, GigE ...
Packets intended for receivers are distributed to all APs over the shared
backend" and "the lead AP makes all control decisions and communicates
them to the slave APs over the Ethernet."

The paper treats the wire as ideal capacity-wise; this model keeps that
assumption for correctness but accounts for latency and bandwidth so the
airtime analysis can include backend effects (e.g. how long before every
AP holds a packet that just arrived from the distribution system).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.utils.validation import require


@dataclass
class BackhaulConfig:
    """Wired backend parameters.

    Attributes:
        bandwidth_bps: Link capacity (GigE default).
        latency_s: One-way propagation + switching latency.
    """

    bandwidth_bps: float = 1e9
    latency_s: float = 50e-6


@dataclass(order=True)
class _Delivery:
    arrival_time: float
    payload: object = field(compare=False)
    destination: str = field(compare=False)


class EthernetBackhaul:
    """A broadcast-capable wired backend with latency and serialization.

    Messages are timestamped; ``deliveries_until(t)`` drains everything
    that has arrived by ``t``.  Broadcast (packet distribution to all APs)
    and unicast (lead -> slave control) share the link's serialization
    budget, which is how the model would surface a backend bottleneck if
    one were configured.
    """

    def __init__(self, nodes: List[str], config: Optional[BackhaulConfig] = None):
        require(len(nodes) >= 1, "need at least one node")
        self.nodes = list(nodes)
        self.config = config or BackhaulConfig()
        self._queue: List[_Delivery] = []
        self._link_free_at = 0.0
        self.bytes_carried = 0

    def _serialize(self, now: float, size_bytes: int) -> float:
        """Reserve link time; returns when the transmission completes."""
        start = max(now, self._link_free_at)
        duration = 8 * size_bytes / self.config.bandwidth_bps
        self._link_free_at = start + duration
        self.bytes_carried += size_bytes
        return self._link_free_at

    def broadcast(self, now: float, payload, size_bytes: int,
                  exclude: Optional[str] = None) -> float:
        """Distribute ``payload`` to every node; returns the arrival time."""
        done = self._serialize(now, size_bytes)
        arrival = done + self.config.latency_s
        for node in self.nodes:
            if node == exclude:
                continue
            heapq.heappush(self._queue, _Delivery(arrival, payload, node))
        return arrival

    def unicast(self, now: float, destination: str, payload, size_bytes: int) -> float:
        """Send ``payload`` to one node; returns the arrival time."""
        require(destination in self.nodes, f"unknown node {destination!r}")
        done = self._serialize(now, size_bytes)
        arrival = done + self.config.latency_s
        heapq.heappush(self._queue, _Delivery(arrival, payload, destination))
        return arrival

    def deliveries_until(self, t: float) -> List[Tuple[float, str, object]]:
        """Pop every (arrival_time, destination, payload) arrived by ``t``."""
        out = []
        while self._queue and self._queue[0].arrival_time <= t:
            d = heapq.heappop(self._queue)
            out.append((d.arrival_time, d.destination, d.payload))
        return out

    def pending(self) -> int:
        return len(self._queue)

    def distribution_delay_s(self, size_bytes: int) -> float:
        """Idle-link time to put one packet on every AP (the §9 pattern)."""
        return 8 * size_bytes / self.config.bandwidth_bps + self.config.latency_s
