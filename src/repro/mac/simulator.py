"""Event-driven downlink simulator: the full MegaMIMO link layer over time.

Ties together every §9 mechanism — the shared downlink queue, lead
election, joint-transmission grouping, effective-SNR rate selection,
asynchronous ARQ — with the physical time axis: Clarke-fading channels
that decorrelate between soundings, periodic re-sounding with its airtime
cost, per-packet slave phase errors, and contention overhead.

The simulator advances packet by packet (transmissions serialize on the
single channel), so it is a faithful airtime accounting rather than an
abstract rate calculation:

    trace = DownlinkSimulator(LinkLayerConfig(n_aps=4, n_clients=4)).run()
    print(trace.format_summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.timevarying import TimeVaryingLinkChannel
from repro.constants import (
    COHERENCE_TIME_S,
    MAC_EFFICIENCY,
    PACKET_SIZE_BYTES,
    SAMPLE_RATE_USRP,
    SNR_BANDS_DB,
)
from repro.core.beamforming import zero_forcing_precoder_wideband
from repro.mac.backhaul import EthernetBackhaul
from repro.mac.queue import DownlinkQueue
from repro.mac.rate import EffectiveSnrRateSelector
from repro.mac.scheduler import JointScheduler
from repro.obs import metrics, timeseries, trace
from repro.phy.mcs import Mcs
from repro.sim.fastsim import SyncErrorModel
from repro.sim.overhead import packet_airtime_s, sounding_airtime_s
from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_linear, linear_to_db
from repro.utils.validation import require


@dataclass
class LinkLayerConfig:
    """Configuration of a downlink simulation run.

    Attributes:
        n_aps / n_clients: System size (streams = n_aps).
        duration_s: Simulated wall-clock time.
        arrival_rate_pps: Poisson packet arrivals per client per second;
            None for fully backlogged queues.
        resound_interval_s: Periodic channel-measurement interval.
        coherence_time_s: Clarke 50%-coherence time of the fading.
        snr_band: Link SNR band (dB) the deployment operates in.
        packet_bytes: Payload size (paper: 1500 bytes).
        contention_overhead_s: Mean DIFS + backoff cost per transmission.
        rate_backoff_db: Link margin subtracted before MCS selection —
            guards against staleness between soundings.
        rate_adaptation: Adapt the margin from delivery feedback (widen on
            bursts of stream failures, narrow after clean streaks) — the
            loss-driven complement of §9's effective-SNR selection.
        grouping: Joint-transmission selection rule — ``"fifo"`` (the
            default greedy-FIFO rule) or ``"throughput"`` (greedy sum-rate
            maximization over the sounded channels, §9's future work).
        backhaul: Wired-backend model; arriving packets become
            transmittable only after the backend has distributed them to
            every AP (§9: "all downlink packets are sent on the Ethernet
            to all MegaMIMO APs").  None = ideal (zero-delay) wire.
        feedback_bits: CSI report precision per real component; the sounded
            snapshot the precoder uses passes through this quantizer.
        seed: RNG seed.
    """

    n_aps: int
    n_clients: int
    duration_s: float = 1.0
    arrival_rate_pps: Optional[float] = None
    resound_interval_s: float = 25e-3
    coherence_time_s: float = COHERENCE_TIME_S
    snr_band: Tuple[float, float] = SNR_BANDS_DB["high"]
    packet_bytes: int = PACKET_SIZE_BYTES
    contention_overhead_s: float = 100e-6
    rate_backoff_db: float = 1.0
    rate_adaptation: bool = True
    grouping: str = "fifo"
    feedback_bits: int = 8
    backhaul: Optional["BackhaulConfig"] = None
    seed: Optional[int] = None

    def __post_init__(self):
        require(self.n_aps >= 1 and self.n_clients >= 1, "need APs and clients")
        require(self.duration_s > 0, "duration must be positive")
        require(self.grouping in ("fifo", "throughput"), "unknown grouping rule")


@dataclass
class DeliveredPacket:
    """Bookkeeping for one successfully delivered packet."""

    client: int
    arrival_time: float
    delivery_time: float
    retries: int

    @property
    def latency_s(self) -> float:
        return self.delivery_time - self.arrival_time


@dataclass
class SimEvent:
    """One timestamped link-layer event.

    Attributes:
        time: Simulation time (seconds).
        kind: "sound", "burst", "deliver", "fail" or "idle".
        detail: Event-specific payload (client index, MCS name, ...).
    """

    time: float
    kind: str
    detail: str


@dataclass
class SimulationTrace:
    """Everything a run produced.

    Attributes:
        delivered: Per-delivery records.
        per_client_goodput_bps: Delivered payload bits per second per client.
        airtime: Seconds spent in {"data", "sounding", "contention", "idle"}.
        n_transmissions / n_failures / n_soundings: Counters.
        events: Timestamped event log (capped; see DownlinkSimulator).
    """

    config: LinkLayerConfig
    delivered: List[DeliveredPacket]
    per_client_goodput_bps: np.ndarray
    airtime: Dict[str, float]
    n_transmissions: int
    n_failures: int
    n_soundings: int
    events: List[SimEvent] = field(default_factory=list)

    @property
    def total_goodput_bps(self) -> float:
        return float(np.sum(self.per_client_goodput_bps))

    @property
    def mean_latency_s(self) -> float:
        if not self.delivered:
            return float("nan")
        return float(np.mean([d.latency_s for d in self.delivered]))

    @property
    def loss_rate(self) -> float:
        attempts = self.n_transmissions
        return self.n_failures / attempts if attempts else 0.0

    def headline(self) -> Dict[str, float]:
        """Ledger/regression headline metrics of this run."""
        out = {
            "sim.goodput_mbps": self.total_goodput_bps / 1e6,
            "sim.loss_rate": float(self.loss_rate),
            "sim.n_soundings": float(self.n_soundings),
            "sim.data_airtime_frac": float(
                self.airtime.get("data", 0.0) / max(self.config.duration_s, 1e-12)
            ),
        }
        if self.delivered:
            out["sim.mean_latency_ms"] = self.mean_latency_s * 1e3
        return out

    def format_summary(self) -> str:
        lines = [
            f"simulated {self.config.duration_s * 1e3:.0f} ms, "
            f"{self.config.n_aps} APs x {self.config.n_clients} clients",
            f"total goodput: {self.total_goodput_bps / 1e6:.1f} Mbps",
            "per-client (Mbps): "
            + " ".join(f"{g / 1e6:.1f}" for g in self.per_client_goodput_bps),
            f"deliveries: {len(self.delivered)}, stream failures: "
            f"{self.n_failures} ({self.loss_rate:.1%}), "
            f"soundings: {self.n_soundings}",
            f"mean latency: {self.mean_latency_s * 1e3:.2f} ms",
            "airtime: "
            + ", ".join(
                f"{k} {v * 1e3:.1f} ms" for k, v in sorted(self.airtime.items())
            ),
        ]
        return "\n".join(lines)


class DownlinkSimulator:
    """Runs the MegaMIMO link layer over evolving channels."""

    N_BINS = 16  # frequency resolution of the MAC-level channel model

    def __init__(self, config: LinkLayerConfig):
        self.config = config
        self._rng = ensure_rng(config.seed)
        self.selector = EffectiveSnrRateSelector(
            SAMPLE_RATE_USRP, mac_efficiency=MAC_EFFICIENCY
        )
        self.error_model = SyncErrorModel()
        # physical links: time-varying, LOS-dominated
        lo, hi = config.snr_band
        self._links = [
            [
                TimeVaryingLinkChannel.create(
                    average_gain=float(db_to_linear(self._rng.uniform(lo, hi))),
                    coherence_time_s=config.coherence_time_s,
                    n_taps=2,
                    rician_k=7.0,
                    rng=self._rng,
                )
                for _ in range(config.n_aps)
            ]
            for _ in range(config.n_clients)
        ]
        snr_map = np.array(
            [
                [linear_to_db(self._links[c][a].gain) for a in range(config.n_aps)]
                for c in range(config.n_clients)
            ]
        )
        self.queue = DownlinkQueue(snr_map)
        self.scheduler = JointScheduler(self.queue, max_streams=config.n_aps)
        self._arrival_times: Dict[int, float] = {}
        self._sounded_channels: Optional[np.ndarray] = None
        self._mcs: Optional[Mcs] = None
        self._effective_snr_db: float = -np.inf
        self._extra_backoff_db: float = 0.0
        self._streak: int = 0  # >0 success streak, <0 failure streak
        # telemetry handles (cached once per simulator)
        self._m_queue_depth = metrics.histogram("mac.queue_depth")
        self._m_retries = metrics.counter("mac.arq.retries")
        self._m_deliveries = metrics.counter("mac.deliveries")
        self._m_failures = metrics.counter("mac.stream_failures")
        self._m_soundings = metrics.counter("mac.soundings")
        self._m_sinr = metrics.histogram("mac.effective_sinr_db")
        self._m_phase_err = metrics.histogram("mac.phase_error_rad")
        # live twin: per-packet sync health streams into the time-series
        # store so budget alerts can fire mid-run (see repro.obs.alerts)
        self._ts_phase_err = timeseries.series("mac.phase_error_rad")
        self._m_airtime = {
            kind: metrics.counter(f"mac.airtime.{kind}_s")
            for kind in ("data", "sounding", "contention", "idle")
        }
        # per-AP airtime share: every AP radiates in a joint burst and in
        # every sounding round, so each gets the full slot attributed
        self._m_ap_airtime = [
            metrics.counter(f"mac.airtime.ap{i}_s") for i in range(config.n_aps)
        ]

    # -- channel bookkeeping -------------------------------------------------

    def _channel_tensor(self, t: float) -> np.ndarray:
        """(N_BINS, n_clients, n_aps) channel snapshot at time ``t``."""
        cfg = self.config
        out = np.empty((self.N_BINS, cfg.n_clients, cfg.n_aps), dtype=complex)
        for c in range(cfg.n_clients):
            for a in range(cfg.n_aps):
                response = self._links[c][a].snapshot(t).frequency_response(64)
                out[:, c, a] = response[: self.N_BINS]
        return out

    def _sound(self, t: float) -> None:
        """Run a channel-measurement phase: store estimates, pick the MCS."""
        cfg = self.config
        from repro.core.feedback import apply_feedback_quantization

        true = self._channel_tensor(t)
        link_snrs = linear_to_db(
            np.maximum(np.mean(np.abs(true) ** 2, axis=0), 1e-12)
        )
        estimated = self.error_model.corrupt_estimate(true, link_snrs, self._rng)
        self._sounded_channels = apply_feedback_quantization(
            estimated, cfg.feedback_bits
        )
        if cfg.grouping == "throughput":
            from repro.mac.grouping import ThroughputAwareGrouping

            self.scheduler.grouping = ThroughputAwareGrouping(
                self._sounded_channels, self.selector
            )
        _, k = zero_forcing_precoder_wideband(self._sounded_channels)
        self._effective_snr_db = float(linear_to_db(k**2)) - cfg.rate_backoff_db
        self._select_mcs()

    def _select_mcs(self) -> None:
        decision = self.selector.select(
            self._effective_snr_db - self._extra_backoff_db
        )
        self._mcs = decision.mcs

    def _record_outcome(self, success: bool) -> None:
        """Loss-driven margin adaptation (AMRR-style)."""
        if not self.config.rate_adaptation:
            return
        self._streak = self._streak + 1 if success else min(self._streak, 0) - 1
        if self._streak <= -3 and self._extra_backoff_db < 6.0:
            self._extra_backoff_db += 1.5
            self._streak = 0
            self._select_mcs()
        elif self._streak >= 30 and self._extra_backoff_db > 0.0:
            self._extra_backoff_db = max(0.0, self._extra_backoff_db - 1.5)
            self._streak = 0
            self._select_mcs()

    def _stream_success(self, t: float, client: int) -> bool:
        """Whether ``client``'s stream decodes, given staleness + sync error.

        Each call models one packet's distributed phase synchronization, so
        it emits one ``phase_sync`` span carrying the drawn slave phase
        errors and the resulting effective SINR.
        """
        if self._mcs is None:
            return False
        with trace.span("phase_sync", client=client, t=t) as span:
            true = self._channel_tensor(t)
            from repro.sim.fastsim import joint_zf_sinr_db

            errors = self.error_model.phase_errors(self.config.n_aps, self._rng)
            sinr = joint_zf_sinr_db(
                true, phase_errors=errors, est_channels=self._sounded_channels
            )
            eff = float(np.mean(sinr[client]))
            success = eff >= self._mcs.min_snr_db
            max_err = float(np.max(np.abs(errors)))
            self._m_sinr.observe(eff)
            self._m_phase_err.observe(max_err)
            self._ts_phase_err.record(max_err)
            span.record(
                max_phase_error_rad=max_err,
                phase_errors_rad=errors,
                effective_sinr_db=eff,
                mcs=self._mcs.name,
                success=success,
            )
        return success

    # -- traffic ---------------------------------------------------------------

    def _generate_arrivals(self) -> List[Tuple[float, int, float]]:
        """(ready_time, client, born_time) triples, sorted by readiness.

        ``born_time`` is when the packet entered the distribution system
        (latency is measured from it); ``ready_time`` is when the backend
        has replicated it to every AP and it becomes transmittable.
        """
        cfg = self.config
        arrivals: List[Tuple[float, int, float]] = []
        if cfg.arrival_rate_pps is None:
            # backlogged: a deep initial backlog per client
            backlog = int(np.ceil(cfg.duration_s * 3000))
            for c in range(cfg.n_clients):
                arrivals.extend((0.0, c, 0.0) for _ in range(backlog))
        else:
            for c in range(cfg.n_clients):
                t = 0.0
                while True:
                    t += float(self._rng.exponential(1.0 / cfg.arrival_rate_pps))
                    if t >= cfg.duration_s:
                        break
                    arrivals.append((t, c, t))
        arrivals.sort()
        if cfg.backhaul is not None:
            wire = EthernetBackhaul(
                [f"ap{i}" for i in range(cfg.n_aps)], cfg.backhaul
            )
            delayed = []
            for t, c, born in arrivals:
                ready = wire.broadcast(t, None, cfg.packet_bytes)
                delayed.append((ready, c, born))
            delayed.sort()
            return delayed
        return arrivals

    # -- main loop ---------------------------------------------------------------

    def run(self) -> SimulationTrace:
        cfg = self.config
        with trace.span(
            "mac.run", n_aps=cfg.n_aps, n_clients=cfg.n_clients,
            duration_s=cfg.duration_s,
        ) as span:
            result = self._run()
            span.record(
                goodput_bps=result.total_goodput_bps,
                deliveries=len(result.delivered),
                failures=result.n_failures,
                soundings=result.n_soundings,
            )
        metrics.gauge("mac.queue_depth_final").set(len(self.queue))
        return result

    def _run(self) -> SimulationTrace:
        cfg = self.config
        arrivals = self._generate_arrivals()
        next_arrival = 0
        airtime = {"data": 0.0, "sounding": 0.0, "contention": 0.0, "idle": 0.0}
        events: List[SimEvent] = []
        max_events = 10_000

        def log(t, kind, detail=""):
            if len(events) < max_events:
                events.append(SimEvent(time=t, kind=kind, detail=detail))

        delivered: List[DeliveredPacket] = []
        delivered_bits = np.zeros(cfg.n_clients)
        n_tx = n_fail = n_soundings = 0
        now = 0.0
        next_sound = 0.0

        def admit_arrivals(up_to: float):
            nonlocal next_arrival
            while next_arrival < len(arrivals) and arrivals[next_arrival][0] <= up_to:
                _, client, born = arrivals[next_arrival]
                packet = self.queue.enqueue(client, size_bytes=cfg.packet_bytes)
                self._arrival_times[packet.seqno] = born
                next_arrival += 1

        while now < cfg.duration_s:
            # periodic re-sounding
            if now >= next_sound:
                cost = sounding_airtime_s(cfg.n_aps, cfg.n_clients)
                with trace.span("mac.sound", t=now, airtime_s=cost) as span:
                    self._sound(now)
                    span.record(
                        mcs=self._mcs.name if self._mcs else None,
                        effective_snr_db=self._effective_snr_db,
                    )
                log(now, "sound",
                    self._mcs.name if self._mcs else "below-MCS-floor")
                airtime["sounding"] += cost
                self._m_airtime["sounding"].inc(cost)
                for counter in self._m_ap_airtime:
                    counter.inc(cost)
                now += cost
                next_sound = now + cfg.resound_interval_s
                n_soundings += 1
                self._m_soundings.inc()
                continue

            admit_arrivals(now)
            self._m_queue_depth.observe(len(self.queue))
            group = self.scheduler.next_group()
            if group is None:
                # idle until the next arrival or sounding
                horizon = min(
                    next_sound,
                    arrivals[next_arrival][0]
                    if next_arrival < len(arrivals)
                    else cfg.duration_s,
                    cfg.duration_s,
                )
                idle = max(horizon - now, 1e-9)
                airtime["idle"] += idle
                self._m_airtime["idle"].inc(idle)
                now = max(horizon, now + 1e-9)
                continue

            if self._mcs is None:
                # channel can't sustain even the lowest rate: drop the burst
                for packet in group.packets:
                    self.queue.requeue(packet)
                    self._m_retries.inc()
                airtime["idle"] += 1e-3
                self._m_airtime["idle"].inc(1e-3)
                now += 1e-3
                continue

            bitrate = self._mcs.bitrate(SAMPLE_RATE_USRP)
            tx_time = packet_airtime_s(bitrate, cfg.packet_bytes)
            log(now, "burst",
                f"{group.n_streams} streams @ {self._mcs.name}")
            airtime["contention"] += cfg.contention_overhead_s
            airtime["data"] += tx_time
            self._m_airtime["contention"].inc(cfg.contention_overhead_s)
            self._m_airtime["data"].inc(tx_time)
            for counter in self._m_ap_airtime:
                counter.inc(tx_time)
            now += cfg.contention_overhead_s + tx_time

            with trace.span(
                "mac.burst", t=now, n_streams=group.n_streams,
                mcs=self._mcs.name, airtime_s=tx_time,
            ) as burst_span:
                n_delivered = 0
                for packet in group.packets:
                    n_tx += 1
                    success = self._stream_success(now, packet.client)
                    self._record_outcome(success)
                    log(now, "deliver" if success else "fail",
                        f"client{packet.client}")
                    if success:
                        n_delivered += 1
                        self._m_deliveries.inc()
                        delivered_bits[packet.client] += cfg.packet_bytes * 8
                        delivered.append(
                            DeliveredPacket(
                                client=packet.client,
                                arrival_time=self._arrival_times.get(packet.seqno, 0.0),
                                delivery_time=now,
                                retries=packet.retries,
                            )
                        )
                    if not success:
                        n_fail += 1
                        self._m_failures.inc()
                        self._m_retries.inc()
                        self.queue.requeue(packet)  # §9: unACKed -> future burst
                burst_span.record(delivered=n_delivered,
                                  failed=len(group.packets) - n_delivered)

        return SimulationTrace(
            config=cfg,
            delivered=delivered,
            per_client_goodput_bps=delivered_bits / cfg.duration_s,
            airtime=airtime,
            n_transmissions=n_tx,
            n_failures=n_fail,
            n_soundings=n_soundings,
            events=events,
        )
