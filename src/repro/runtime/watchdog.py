"""Worker watchdog: detect stalled sweep chunks instead of waiting forever.

A hung pool worker — a kernel stuck in a retry loop, a deadlocked BLAS,
an injected :mod:`repro.runtime.faults` hang — used to block the
engine's result loop indefinitely: ``as_completed`` has no deadline, so
an hours-long sweep died silently at whatever chunk stopped answering.

:class:`ChunkWatchdog` is the parent-side monitor the engine arms around
every backend.  The engine reports ``submitted``/``completed`` for each
work item; a daemon monitor thread checks, every
:data:`POLL_INTERVAL_S`, whether *any* completion has happened within
the current **deadline**:

* ``REPRO_WATCHDOG_TIMEOUT_S`` — explicit override, used verbatim;
* otherwise ``max(floor, MULTIPLIER x p95)`` of the chunk durations
  observed so far this sweep (the floor, :data:`DEFAULT_FLOOR_S`,
  covers the cold start before enough samples exist).

On a stall the watchdog — from its own thread, so a hung main thread
cannot stop it —

1. emits a ``runtime.watchdog`` trace event, bumps the
   ``runtime.watchdog_stalls`` counter and time series (which the
   builtin critical alert rule ``runtime.watchdog_stall`` watches),
2. records the stall on the flight recorder and writes a
   ``runs/crash-<runid>/`` forensics bundle — including a
   ``faulthandler`` dump of every thread, hung ones included,
3. releases cooperative fault hangs (:func:`repro.runtime.faults
   .cancel_hangs`) and sets :attr:`stalled`, on which the engine's
   pool/thread result loops break out, kill the abandoned workers, and
   re-run the unfinished chunks serially through the existing
   retry path.

``REPRO_WATCHDOG=0`` disables the monitor entirely.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.obs import get_logger, metrics, trace
from repro.obs.flightrec import record as flightrec_record
from repro.obs.timeseries import get_store

logger = get_logger(__name__)

#: Environment variable: "0" disables the watchdog.
WATCHDOG_ENV = "REPRO_WATCHDOG"

#: Environment variable: explicit stall deadline in seconds (overrides
#: the percentile-derived deadline entirely).
TIMEOUT_ENV = "REPRO_WATCHDOG_TIMEOUT_S"

#: Deadline floor while too few chunk durations have been observed (and
#: the minimum the derived deadline can ever shrink to).
DEFAULT_FLOOR_S = 30.0

#: Derived deadline = MULTIPLIER x p95 of observed chunk durations.
DEADLINE_MULTIPLIER = 10.0

#: Completed-chunk samples required before the percentile is trusted.
MIN_DURATION_SAMPLES = 5

#: Chunk-duration samples retained for the percentile (ring).
DURATION_WINDOW = 256

#: Seconds between monitor-thread checks.
POLL_INTERVAL_S = 0.25

#: One work item, as the engine keys it.
Task = Tuple[int, int, int, int]

_STALLS = metrics.counter("runtime.watchdog_stalls")


def watchdog_enabled() -> bool:
    """False when ``REPRO_WATCHDOG=0``."""
    return os.environ.get(WATCHDOG_ENV, "").strip() != "0"


def timeout_override_s() -> Optional[float]:
    """The ``REPRO_WATCHDOG_TIMEOUT_S`` deadline, or None."""
    raw = os.environ.get(TIMEOUT_ENV, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        logger.warning("ignoring invalid %s=%r", TIMEOUT_ENV, raw)
        return None
    return value if value > 0 else None


def duration_percentile(durations: List[float], q: float) -> float:
    """Linear-interpolated percentile of a small sample (stdlib only)."""
    if not durations:
        raise ValueError("no durations")
    ordered = sorted(durations)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ChunkWatchdog:
    """Parent-side stall monitor for one sweep run.

    Create via :meth:`create` (returns None when disabled), arm with
    :meth:`start`, report work through :meth:`submitted` /
    :meth:`completed`, and always :meth:`stop` in a ``finally``.
    """

    def __init__(
        self,
        sweep: str,
        mode: str,
        workers: int = 1,
        floor_s: float = DEFAULT_FLOOR_S,
        poll_interval_s: float = POLL_INTERVAL_S,
    ):
        self.sweep = sweep
        self.mode = mode
        self.workers = int(workers)
        self.floor_s = float(floor_s)
        self.poll_interval_s = float(poll_interval_s)
        self.override_s = timeout_override_s()
        #: Set (once) when a stall has been declared.
        self.stalled = threading.Event()
        #: Snapshot of the stall, filled at fire time.
        self.stall_info: Dict[str, Any] = {}
        self.stall_count = 0
        self._durations: Deque[float] = deque(maxlen=DURATION_WINDOW)
        self._in_flight: Dict[Task, float] = {}
        self._last_progress = time.monotonic()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def create(
        cls, sweep: str, mode: str, workers: int = 1
    ) -> Optional["ChunkWatchdog"]:
        """A started watchdog, or None when ``REPRO_WATCHDOG=0``."""
        if not watchdog_enabled():
            return None
        return cls(sweep, mode, workers).start()

    # -- engine-facing accounting ----------------------------------------------

    def submitted(self, task: Task) -> None:
        """A work item entered the backend (queued or running)."""
        with self._lock:
            self._in_flight[task] = time.monotonic()

    def completed(self, task: Task, wall_s: Optional[float] = None) -> None:
        """A work item finished (successfully or via the retry path)."""
        with self._lock:
            self._in_flight.pop(task, None)
            self._last_progress = time.monotonic()
            if wall_s is not None and wall_s >= 0.0:
                self._durations.append(float(wall_s))

    def abandon_all(self) -> List[Task]:
        """Forget every in-flight item (stall recovery); returns them."""
        with self._lock:
            tasks = sorted(self._in_flight)
            self._in_flight.clear()
            self._last_progress = time.monotonic()
        return tasks

    # -- deadline --------------------------------------------------------------

    @property
    def deadline_s(self) -> float:
        """The current stall deadline (override, or derived percentile)."""
        if self.override_s is not None:
            return self.override_s
        with self._lock:
            durations = list(self._durations)
        if len(durations) < MIN_DURATION_SAMPLES:
            return self.floor_s
        p95 = duration_percentile(durations, 95.0)
        return max(self.floor_s, DEADLINE_MULTIPLIER * p95)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "ChunkWatchdog":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._monitor, name=f"repro-watchdog-{self.sweep}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=2.0)

    # -- monitoring ------------------------------------------------------------

    def _monitor(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            if self.stalled.is_set():
                continue  # one declaration per sweep; engine recovery owns it
            with self._lock:
                in_flight = sorted(self._in_flight)
                waited = time.monotonic() - self._last_progress
            if not in_flight:
                continue
            deadline = self.deadline_s
            if waited <= deadline:
                continue
            self._fire(in_flight, waited, deadline)

    def _fire(
        self, in_flight: List[Task], waited: float, deadline: float
    ) -> None:
        """Declare the stall: telemetry, forensics, cooperative cancel."""
        from repro.obs import blackbox
        from repro.runtime import faults

        self.stall_count += 1
        _STALLS.inc()
        info: Dict[str, Any] = {
            "sweep": self.sweep,
            "mode": self.mode,
            "workers": self.workers,
            "waited_s": round(waited, 3),
            "deadline_s": round(deadline, 3),
            "stalled_chunks": len(in_flight),
            "tasks": [list(t) for t in in_flight[:8]],
        }
        self.stall_info = info
        logger.error(
            "watchdog: sweep %r stalled — no chunk completion in %.1fs "
            "(deadline %.1fs, %d chunk(s) in flight on the %s backend); "
            "dumping forensics and recovering serially",
            self.sweep, waited, deadline, len(in_flight), self.mode,
        )
        trace.event("runtime.watchdog", **info)
        flightrec_record("runtime.watchdog", info)
        get_store().record("runtime.watchdog_stalls", float(_STALLS.value))
        bundle = blackbox.write_crash_bundle("watchdog_stall", detail=info)
        if bundle is not None:
            info["bundle"] = str(bundle)
        # Release cooperative hangs *before* waking the engine: a hung
        # pool thread can now unwind instead of blocking interpreter
        # exit, and the serial retry of the same chunk runs through.
        faults.cancel_hangs()
        self.stalled.set()
