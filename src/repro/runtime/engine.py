"""Deterministic process-pool sweep engine.

Every figure reproduction and ablation is an embarrassingly parallel Monte
Carlo sweep: a grid of *cells* (one per parameter combination), each
running ``n_trials`` independent draws of a pure kernel function

    kernel(params, seed) -> result

where ``seed`` is a ``numpy.random.SeedSequence`` derived from
``(master_seed, sweep_name, cell_index, trial_index)`` — see
:mod:`repro.runtime.seeding`.  Because the stream is keyed on the task
coordinate and not on scheduling, the aggregated output is bit-identical
across ``workers=1``, any pool size, any chunking, and checkpoint/resume.

Execution model:

* trials are sharded into ``(cell, trial-chunk)`` work items;
* ``workers > 1`` dispatches chunks to a ``ProcessPoolExecutor`` (stdlib
  only, ``fork`` or ``spawn`` both fine: kernels are importable top-level
  functions and params are picklable);
* results are normalized through :func:`repro.obs.events.jsonable` and
  re-ordered by ``(cell, trial)`` before aggregation, so completion order
  cannot leak into the output;
* a chunk whose future fails — the kernel raised, or the worker died and
  the pool broke — is retried *serially in the parent process*, recorded
  through ``repro.obs`` (``runtime.chunk_failures`` /
  ``runtime.serial_retries`` counters and a trace event);
* ``workers=1`` never touches multiprocessing at all;
* an optional JSONL checkpoint persists each completed chunk, and
  ``resume=True`` skips chunks already on disk (header-validated);
* every chunk completion feeds a :class:`repro.obs.progress.SweepProgress`
  tracker, which renders a live stderr status line (done/total, trials/s,
  ETA, retries) and mirrors it as ``runtime.progress`` trace events —
  parent-process-only state that cannot affect results.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import get_logger, metrics, trace
from repro.obs.events import jsonable
from repro.obs.progress import SweepProgress
from repro.runtime.checkpoint import open_checkpoint, sweep_header
from repro.runtime.seeding import seed_sequence
from repro.utils.validation import require

logger = get_logger(__name__)

#: Default trials per work item; small enough to load-balance, large enough
#: to amortize task dispatch.
DEFAULT_CHUNK_SIZE = 4

#: Environment marker set in pool workers (via the pool initializer), so
#: kernels and tests can tell worker context from the parent process.
WORKER_ENV_FLAG = "REPRO_RUNTIME_WORKER"

#: One work item: ``(cell_index, chunk_index, start_trial, stop_trial)``.
Task = Tuple[int, int, int, int]

_CHUNKS_RUN = metrics.counter("runtime.chunks_run")
_CHUNKS_RESUMED = metrics.counter("runtime.chunks_resumed")
_CHUNK_FAILURES = metrics.counter("runtime.chunk_failures")
_SERIAL_RETRIES = metrics.counter("runtime.serial_retries")


class SweepError(RuntimeError):
    """A sweep could not produce a complete, consistent result."""


@dataclass(frozen=True)
class CellSpec:
    """One cell of a sweep grid.

    Attributes:
        key: JSON-able label of the cell (e.g. ``("high", 4)``).
        params: Picklable kernel parameters shared by the cell's trials.
        n_trials: Number of independent kernel draws in this cell.
    """

    key: Any
    params: Any
    n_trials: int


@dataclass
class SweepResult:
    """Aggregated output of one sweep run.

    Attributes:
        name: Sweep name (the seed-derivation key).
        master_seed: Master seed of the run.
        cells: The cell specs, in grid order.
        results: Per-cell kernel results, ordered by trial index.
        chunk_failures: Work items that needed a serial retry.
        resumed_chunks: Work items loaded from the checkpoint.
    """

    name: str
    master_seed: int
    cells: Sequence[CellSpec]
    results: List[List[Any]]
    chunk_failures: int = 0
    resumed_chunks: int = 0

    def cell_results(self, key: Any) -> List[Any]:
        """The trial-ordered results of the cell labelled ``key``."""
        normalized = jsonable(key)
        for cell, results in zip(self.cells, self.results):
            if jsonable(cell.key) == normalized:
                return results
        raise KeyError(key)


def iter_chunks(n_trials: int, chunk_size: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(chunk_index, start, stop)`` covering every trial exactly once."""
    require(n_trials >= 0, "n_trials must be non-negative")
    require(chunk_size >= 1, "chunk_size must be >= 1")
    for chunk_index, start in enumerate(range(0, n_trials, chunk_size)):
        yield chunk_index, start, min(start + chunk_size, n_trials)


def run_chunk(
    kernel: Callable[[Any, Any], Any],
    sweep: str,
    master_seed: int,
    params: Any,
    cell_index: int,
    start: int,
    stop: int,
) -> List[list]:
    """Run one chunk's trials; returns ``[[trial_index, result], ...]``.

    This is the unit of work shipped to pool workers, and also the exact
    code the serial path and the failure-retry path run — one
    implementation, three call sites, so the equivalence tests compare
    scheduling only.
    """
    out: List[list] = []
    for t in range(start, stop):
        seed = seed_sequence(master_seed, sweep, cell_index, t)
        out.append([t, jsonable(kernel(params, seed))])
    return out


def _worker_init() -> None:
    """Pool-worker initializer: mark the process and detach inherited obs.

    The forked child inherits the parent's tracer (and its open file); spans
    written from two processes would interleave mid-line, so workers run
    with tracing detached.  Metrics incremented inside workers live in the
    worker's copy of the registry and are intentionally not merged — the
    engine accounts for work items in the parent.
    """
    os.environ[WORKER_ENV_FLAG] = "1"
    trace.enabled = False
    trace._writer = None


def assemble_results(
    cells: Sequence[CellSpec],
    chunk_results: Dict[Tuple[int, int], List[list]],
) -> List[List[Any]]:
    """Re-order completed chunks into per-cell, trial-ordered result lists.

    Permutation-invariant in the completion/submission order of
    ``chunk_results`` (it sorts by trial index), and strict about coverage:
    every trial of every cell must appear exactly once.
    """
    per_cell: List[Dict[int, Any]] = [{} for _ in cells]
    for (cell_index, _chunk_index), pairs in chunk_results.items():
        bucket = per_cell[cell_index]
        for trial_index, result in pairs:
            if trial_index in bucket:
                raise SweepError(
                    f"trial {trial_index} of cell {cell_index} produced twice"
                )
            bucket[int(trial_index)] = result
    ordered: List[List[Any]] = []
    for cell_index, (cell, bucket) in enumerate(zip(cells, per_cell)):
        if len(bucket) != cell.n_trials:
            missing = sorted(set(range(cell.n_trials)) - set(bucket))[:5]
            raise SweepError(
                f"cell {cell_index} ({cell.key!r}): {len(bucket)} of "
                f"{cell.n_trials} trials completed (missing {missing}...)"
            )
        ordered.append([bucket[t] for t in range(cell.n_trials)])
    return ordered


def run_sweep(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    checkpoint: Optional[str] = None,
    resume: bool = False,
) -> SweepResult:
    """Run a sweep grid, serially or across a process pool.

    Args:
        name: Sweep name; part of every task's seed-derivation key, and
            stamped into the checkpoint header.
        kernel: Pure, picklable ``(params, seed) -> result`` function; the
            result must be JSON-serializable (floats/lists/dicts — it is
            normalized through ``jsonable`` either way, so numpy scalars
            and arrays are folded to plain Python).
        cells: The sweep grid.
        master_seed: Root of all derived seeds.
        workers: Pool size; ``1`` runs in-process with no multiprocessing.
        chunk_size: Trials per work item.
        checkpoint: Optional JSONL progress-file path.
        resume: Skip chunks already present in ``checkpoint``.

    Returns:
        A :class:`SweepResult` whose ``results`` are bit-identical for any
        ``workers``/chunking/resume combination at the same master seed.
    """
    cells = list(cells)
    require(workers >= 1, "workers must be >= 1")
    header = sweep_header(name, master_seed, chunk_size, cells)
    completed, writer = open_checkpoint(checkpoint, resume, header)
    resumed = len(completed)
    if resumed:
        _CHUNKS_RESUMED.inc(resumed)

    tasks = [
        (cell_index, chunk_index, start, stop)
        for cell_index, cell in enumerate(cells)
        for chunk_index, start, stop in iter_chunks(cell.n_trials, chunk_size)
    ]
    pending = [t for t in tasks if (t[0], t[1]) not in completed]
    failures = 0
    progress = SweepProgress(
        name=name,
        total_chunks=len(tasks),
        total_trials=sum(cell.n_trials for cell in cells),
        workers=workers,
        resumed_chunks=resumed,
        resumed_trials=sum(len(pairs) for pairs in completed.values()),
    )

    def finish(task: Task, results: List[list]) -> None:
        cell_index, chunk_index = task[0], task[1]
        completed[(cell_index, chunk_index)] = results
        _CHUNKS_RUN.inc()
        if writer is not None:
            writer.append_chunk(cell_index, chunk_index, results)
        progress.chunk_done(task[3] - task[2])

    with trace.span(
        "runtime.sweep", sweep=name, workers=workers, chunks=len(tasks),
        resumed=resumed,
    ) as span:
        try:
            if workers == 1 or not pending:
                for task in pending:
                    cell_index, _chunk_index, start, stop = task
                    finish(task, run_chunk(
                        kernel, name, master_seed, cells[cell_index].params,
                        cell_index, start, stop,
                    ))
            else:
                failures = _run_pool(
                    name, kernel, cells, master_seed, workers, pending, finish,
                    progress,
                )
        finally:
            if writer is not None:
                writer.close()
            progress.close()
        span.record(chunk_failures=failures)

    results = assemble_results(cells, completed)
    return SweepResult(
        name=name,
        master_seed=int(master_seed),
        cells=cells,
        results=results,
        chunk_failures=failures,
        resumed_chunks=resumed,
    )


def _run_pool(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    workers: int,
    pending: Sequence[Task],
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress] = None,
) -> int:
    """Dispatch chunks to a process pool; retry failures serially in-parent.

    Returns the number of chunks that needed a serial retry.  A dead worker
    breaks the whole pool (``BrokenProcessPool``); every not-yet-finished
    future then fails fast and each chunk is re-run serially, so the sweep
    degrades gracefully to in-process execution rather than aborting.
    """
    failures = 0
    with ProcessPoolExecutor(max_workers=workers, initializer=_worker_init) as pool:
        futures = {
            pool.submit(
                run_chunk, kernel, name, master_seed, cells[task[0]].params,
                task[0], task[2], task[3],
            ): task
            for task in pending
        }
        for future in as_completed(futures):
            task = futures[future]
            cell_index, chunk_index, start, stop = task
            try:
                results = future.result()
            except Exception as exc:  # kernel error or broken pool
                failures += 1
                _CHUNK_FAILURES.inc()
                if progress is not None:
                    progress.chunk_failed()
                logger.warning(
                    "chunk (cell=%d, chunk=%d) of sweep %r failed in the "
                    "pool (%s: %s); retrying serially",
                    cell_index, chunk_index, name, type(exc).__name__, exc,
                )
                trace.event(
                    "runtime.chunk_failure", sweep=name, cell=cell_index,
                    chunk=chunk_index, error=type(exc).__name__,
                )
                results = run_chunk(
                    kernel, name, master_seed, cells[cell_index].params,
                    cell_index, start, stop,
                )
                _SERIAL_RETRIES.inc()
                if progress is not None:
                    progress.retry_done()
            finish(task, results)
    return failures
