"""Deterministic process-pool sweep engine.

Every figure reproduction and ablation is an embarrassingly parallel Monte
Carlo sweep: a grid of *cells* (one per parameter combination), each
running ``n_trials`` independent draws of a pure kernel function

    kernel(params, seed) -> result

where ``seed`` is a ``numpy.random.SeedSequence`` derived from
``(master_seed, sweep_name, cell_index, trial_index)`` — see
:mod:`repro.runtime.seeding`.  Because the stream is keyed on the task
coordinate and not on scheduling, the aggregated output is bit-identical
across ``workers=1``, any pool size, any chunking, and checkpoint/resume.

Execution model:

* trials are sharded into ``(cell, trial-chunk)`` work items;
* ``workers > 1`` dispatches chunks to a ``ProcessPoolExecutor`` (stdlib
  only, ``fork`` or ``spawn`` both fine: kernels are importable top-level
  functions and params are picklable);
* results are normalized through :func:`repro.obs.events.jsonable` and
  re-ordered by ``(cell, trial)`` before aggregation, so completion order
  cannot leak into the output;
* a chunk whose future fails — the kernel raised, or the worker died and
  the pool broke — is retried *serially in the parent process*, recorded
  through ``repro.obs`` (``runtime.chunk_failures`` /
  ``runtime.serial_retries`` counters and a trace event);
* ``workers=1`` never touches multiprocessing at all;
* an optional JSONL checkpoint persists each completed chunk, and
  ``resume=True`` skips chunks already on disk (header-validated);
* every chunk completion feeds a :class:`repro.obs.progress.SweepProgress`
  tracker, which renders a live stderr status line (done/total, trials/s,
  ETA, retries) and mirrors it as ``runtime.progress`` trace events —
  parent-process-only state that cannot affect results;
* every completed chunk carries a dispatch-overhead *envelope* (worker
  wall/CPU compute, receive/done timestamps, result-serialization cost)
  recorded in the parent as ``runtime.chunk`` trace events and
  ``runtime.*`` metrics; :func:`repro.obs.profile.attribute_chunks` folds
  these into the per-worker ``wall = compute + dispatch + serialization +
  idle`` breakdown stamped into :attr:`SweepResult.overhead`;
* when the parent traces to a file, pool workers re-open per-worker JSONL
  shards (via the pool initializer) that are merged back into the parent
  trace after the pool drains, so kernel-level spans survive the process
  boundary with correct parent linkage.

All accounting is parent-side or envelope metadata riding alongside the
result payload — kernel results are untouched, so the bit-identical
guarantee across worker counts is preserved.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import tracemalloc
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs import get_logger, metrics, shards, trace
from repro.obs.events import jsonable
from repro.obs.flightrec import record as flightrec_record
from repro.obs.metrics import Timer
from repro.obs.profile import attribute_chunks
from repro.obs.progress import SweepProgress
from repro.obs.timeseries import get_store
from repro.runtime import faults
from repro.runtime.checkpoint import open_checkpoint, sweep_header
from repro.runtime.seeding import seed_sequence
from repro.runtime.watchdog import ChunkWatchdog
from repro.utils.validation import require

logger = get_logger(__name__)

#: Default trials per work item; small enough to load-balance, large enough
#: to amortize task dispatch.
DEFAULT_CHUNK_SIZE = 4

#: Trials per work item on the batched backend.  Much larger than
#: DEFAULT_CHUNK_SIZE on purpose: a batched chunk is one stacked-ndarray
#: kernel call, so the python/dispatch cost is per *chunk* rather than per
#: trial and bigger chunks amortize it further (load balancing is moot —
#: batched chunks run in-parent).
BATCHED_CHUNK_SIZE = 32

#: The selectable execution backends (see :func:`resolve_backend`).
BACKENDS = ("auto", "serial", "thread", "process", "batched")

#: ``auto``: minimum total pending trials before a process pool can beat
#: serial.  Calibrated from the PR-6 overhead envelopes in
#: ``BENCH_sweeps.json``: pool dispatch + result serialization cost
#: ~10-15 ms per chunk against per-trial compute of ~1-3 ms, so small
#: sweeps lose outright (recorded speedups 0.71-0.96x) and only grids in
#: the many-hundreds of trials can amortize the envelope even with real
#: cores available.
POOL_MIN_TRIALS = 512

#: Environment marker set in pool workers (via the pool initializer), so
#: kernels and tests can tell worker context from the parent process.
WORKER_ENV_FLAG = "REPRO_RUNTIME_WORKER"

#: Set to "1" to sample per-chunk peak memory via ``tracemalloc`` (in the
#: parent for serial runs, in every pool worker for parallel ones).
MEMORY_ENV_FLAG = "REPRO_PROFILE_MEMORY"

#: One work item: ``(cell_index, chunk_index, start_trial, stop_trial)``.
Task = Tuple[int, int, int, int]

#: A chunk result plus its dispatch-overhead accounting fields.
Envelope = Dict[str, Any]

_CHUNKS_RUN = metrics.counter("runtime.chunks_run")
_CHUNKS_RESUMED = metrics.counter("runtime.chunks_resumed")
_CHUNK_FAILURES = metrics.counter("runtime.chunk_failures")
_SERIAL_RETRIES = metrics.counter("runtime.serial_retries")
_QUEUE_WAIT_S = metrics.histogram("runtime.queue_wait_s")
_WORKER_WALL_S = metrics.histogram("runtime.worker_wall_s")
_WORKER_CPU_S = metrics.histogram("runtime.worker_cpu_s")
_SER_TASK_S = metrics.counter("runtime.ser_task_s")
_SER_TASK_BYTES = metrics.counter("runtime.ser_task_bytes")
_SER_RESULT_S = metrics.counter("runtime.ser_result_s")
_SER_RESULT_BYTES = metrics.counter("runtime.ser_result_bytes")

#: Live time-series store the chunk envelopes publish into (parent-side).
_STORE = get_store()

#: Overhead breakdowns of completed sweeps, drained by benchmark tooling.
_SWEEP_OVERHEADS: List[Dict[str, Any]] = []


def drain_overheads() -> List[Dict[str, Any]]:
    """Return and clear the overhead breakdowns of sweeps run so far.

    Parent-process state: each :func:`run_sweep` that executed at least one
    chunk appends its :attr:`SweepResult.overhead` dict here, so callers
    that drive sweeps indirectly (benchmarks, experiments) can collect the
    breakdowns without threading the results through every layer.
    """
    out = list(_SWEEP_OVERHEADS)
    _SWEEP_OVERHEADS.clear()
    return out


class SweepError(RuntimeError):
    """A sweep could not produce a complete, consistent result."""


#: A batched kernel: ``(params, seeds) -> [result, ...]`` — one result per
#: seed, in order, each bit-identical (or documented-tolerance-identical)
#: to ``kernel(params, seed)`` on the matching seed.
BatchedKernel = Callable[[Any, Sequence[Any]], Sequence[Any]]

_BATCHED_KERNELS: Dict[Callable[[Any, Any], Any], BatchedKernel] = {}


def register_batched_kernel(
    kernel: Callable[[Any, Any], Any], batched: BatchedKernel
) -> None:
    """Register ``batched`` as the vectorized twin of scalar ``kernel``.

    The registry is keyed on the kernel function object; modules register
    their batched twins at import time so :func:`run_sweep` can resolve
    them for the ``batched``/``auto`` backends.  The contract — enforced by
    ``tests/runtime/test_backend_equivalence.py`` — is that
    ``batched(params, seeds)`` returns one result per seed, equal to the
    scalar kernel's output for that seed.
    """
    _BATCHED_KERNELS[kernel] = batched


def batched_kernel_for(
    kernel: Callable[[Any, Any], Any],
) -> Optional[BatchedKernel]:
    """The registered batched twin of ``kernel``, or None."""
    return _BATCHED_KERNELS.get(kernel)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def resolve_backend(
    backend: Optional[str],
    kernel: Callable[[Any, Any], Any],
    workers: int,
    total_trials: int,
) -> str:
    """Map a requested backend to the concrete execution mode of this run.

    * ``None`` keeps the legacy semantics exactly: ``workers > 1`` means the
      process pool, otherwise serial.
    * ``"auto"`` prefers a registered batched twin (one core is enough for
      its speedup); otherwise it picks the process pool only when there are
      real cores *and* enough trials (``POOL_MIN_TRIALS``) to amortize the
      PR-6 dispatch envelopes, falling back to serial.
    * ``"batched"`` requires a registered twin and raises
      :class:`SweepError` without one.
    * ``"serial"``, ``"thread"`` and ``"process"`` are taken literally.
    """
    if backend is None:
        return "process" if workers > 1 else "serial"
    require(
        backend in BACKENDS,
        f"unknown backend {backend!r}; expected one of {BACKENDS}",
    )
    if backend == "auto":
        if batched_kernel_for(kernel) is not None:
            return "batched"
        if workers > 1 and _usable_cpus() >= 2 and total_trials >= POOL_MIN_TRIALS:
            return "process"
        return "serial"
    if backend == "batched" and batched_kernel_for(kernel) is None:
        raise SweepError(
            f"backend 'batched' requested but no batched implementation is "
            f"registered for kernel {getattr(kernel, '__name__', kernel)!r} "
            "(see register_batched_kernel)"
        )
    return backend


@dataclass(frozen=True)
class CellSpec:
    """One cell of a sweep grid.

    Attributes:
        key: JSON-able label of the cell (e.g. ``("high", 4)``).
        params: Picklable kernel parameters shared by the cell's trials.
        n_trials: Number of independent kernel draws in this cell.
    """

    key: Any
    params: Any
    n_trials: int


@dataclass
class SweepResult:
    """Aggregated output of one sweep run.

    Attributes:
        name: Sweep name (the seed-derivation key).
        master_seed: Master seed of the run.
        cells: The cell specs, in grid order.
        results: Per-cell kernel results, ordered by trial index.
        chunk_failures: Work items that needed a serial retry.
        resumed_chunks: Work items loaded from the checkpoint.
        watchdog_stalls: Stall declarations by the chunk watchdog (each
            one abandoned the in-flight work and drained it serially).
        overhead: Per-worker wall-time attribution of this run (see
            :meth:`repro.obs.profile.SweepAttribution.to_dict`), or None
            when every chunk came from the checkpoint.
    """

    name: str
    master_seed: int
    cells: Sequence[CellSpec]
    results: List[List[Any]]
    chunk_failures: int = 0
    resumed_chunks: int = 0
    watchdog_stalls: int = 0
    overhead: Optional[Dict[str, Any]] = None

    def cell_results(self, key: Any) -> List[Any]:
        """The trial-ordered results of the cell labelled ``key``."""
        normalized = jsonable(key)
        for cell, results in zip(self.cells, self.results):
            if jsonable(cell.key) == normalized:
                return results
        raise KeyError(key)


def iter_chunks(n_trials: int, chunk_size: int) -> Iterator[Tuple[int, int, int]]:
    """Yield ``(chunk_index, start, stop)`` covering every trial exactly once."""
    require(n_trials >= 0, "n_trials must be non-negative")
    require(chunk_size >= 1, "chunk_size must be >= 1")
    for chunk_index, start in enumerate(range(0, n_trials, chunk_size)):
        yield chunk_index, start, min(start + chunk_size, n_trials)


def run_chunk(
    kernel: Callable[[Any, Any], Any],
    sweep: str,
    master_seed: int,
    params: Any,
    cell_index: int,
    start: int,
    stop: int,
) -> List[list]:
    """Run one chunk's trials; returns ``[[trial_index, result], ...]``.

    This is the unit of work shipped to pool workers, and also the exact
    code the serial path and the failure-retry path run — one
    implementation, three call sites, so the equivalence tests compare
    scheduling only.

    The env-gated hang fault (:func:`repro.runtime.faults
    .maybe_hang_chunk`) sits before the trial loop: a cancelled hang
    raises before any trial runs, so a watchdog-killed chunk never
    produces a partial result.
    """
    faults.maybe_hang_chunk(cell_index, start, stop)
    out: List[list] = []
    for t in range(start, stop):
        seed = seed_sequence(master_seed, sweep, cell_index, t)
        out.append([t, jsonable(kernel(params, seed))])
    return out


def _instrument_chunk(
    work: Callable[[], List[list]],
    sweep: str,
    cell_index: int,
    chunk_index: int,
    trials: int,
    measure_ser: bool,
) -> Envelope:
    """Run one chunk of work wrapped in dispatch-overhead accounting.

    Records receive/done wall-clock timestamps (``time.time()``, comparable
    across processes on one machine), wall/CPU compute time, the executing
    thread id (so the thread backend can attribute per-thread), peak memory
    when tracemalloc is live, and — when ``measure_ser`` — the cost of
    pickling the result payload, measured once here so the parent sees the
    real transfer size.  Returns an *envelope* dict with the result under
    ``"pairs"`` plus the accounting fields.
    """
    recv_ts = time.time()
    sample_mem = tracemalloc.is_tracing()
    if sample_mem:
        tracemalloc.reset_peak()
    timer = Timer().start()
    with trace.span(
        "runtime.chunk", sweep=sweep, cell=cell_index, chunk=chunk_index,
        trials=trials,
    ):
        pairs = work()
    timer.stop()
    envelope: Envelope = {
        "pairs": pairs,
        "worker_pid": os.getpid(),
        "worker_tid": threading.get_ident(),
        "recv_ts": recv_ts,
        "wall_s": timer.wall_s,
        "cpu_s": timer.cpu_s,
        "ser_result_bytes": 0,
        "ser_result_s": 0.0,
    }
    if sample_mem:
        envelope["mem_peak_kb"] = tracemalloc.get_traced_memory()[1] / 1024.0
    if measure_ser:
        ser = Timer().start()
        blob = pickle.dumps(pairs, protocol=pickle.HIGHEST_PROTOCOL)
        ser.stop()
        envelope["ser_result_bytes"] = len(blob)
        envelope["ser_result_s"] = ser.wall_s
    if os.environ.get(WORKER_ENV_FLAG):
        # keep the shard complete per chunk, so a worker killed later
        # leaves whole lines for the merger
        trace.flush()
    envelope["done_ts"] = time.time()
    return envelope


def run_chunk_instrumented(
    kernel: Callable[[Any, Any], Any],
    sweep: str,
    master_seed: int,
    params: Any,
    cell_index: int,
    chunk_index: int,
    start: int,
    stop: int,
    measure_ser: bool = True,
) -> Envelope:
    """Run one scalar-kernel chunk wrapped in dispatch-overhead accounting.

    The work is exactly :func:`run_chunk`; the accounting envelope is
    described at :func:`_instrument_chunk`.  ``measure_ser=False`` (serial
    and retry paths, where no pickling happens) skips the serialization
    probe so in-process runs aren't charged for work they don't do.
    """
    return _instrument_chunk(
        lambda: run_chunk(
            kernel, sweep, master_seed, params, cell_index, start, stop
        ),
        sweep, cell_index, chunk_index, stop - start, measure_ser,
    )


def run_chunk_batched(
    batched: BatchedKernel,
    sweep: str,
    master_seed: int,
    params: Any,
    cell_index: int,
    start: int,
    stop: int,
) -> List[list]:
    """Run one chunk through a batched kernel; ``[[trial, result], ...]``.

    Seeds are derived per trial exactly as :func:`run_chunk` derives them —
    the batched kernel receives the same ``SeedSequence`` list a serial
    chunk would consume one-by-one, which is what makes batched results
    comparable across backends.
    """
    faults.maybe_hang_chunk(cell_index, start, stop)
    seeds = [
        seed_sequence(master_seed, sweep, cell_index, t)
        for t in range(start, stop)
    ]
    results = batched(params, seeds)
    if len(results) != stop - start:
        raise SweepError(
            f"batched kernel returned {len(results)} results for "
            f"{stop - start} seeds (cell {cell_index}, trials "
            f"[{start}, {stop}))"
        )
    return [[t, jsonable(r)] for t, r in zip(range(start, stop), results)]


def run_chunk_batched_instrumented(
    batched: BatchedKernel,
    sweep: str,
    master_seed: int,
    params: Any,
    cell_index: int,
    chunk_index: int,
    start: int,
    stop: int,
) -> Envelope:
    """Batched twin of :func:`run_chunk_instrumented` (always in-process,
    so the serialization probe is skipped)."""
    return _instrument_chunk(
        lambda: run_chunk_batched(
            batched, sweep, master_seed, params, cell_index, start, stop
        ),
        sweep, cell_index, chunk_index, stop - start, measure_ser=False,
    )


def _worker_init(trace_context: Optional[Dict[str, Any]] = None) -> None:
    """Pool-worker initializer: mark the process, re-home obs into a shard.

    The forked child inherits the parent's tracer (and its open file); spans
    written from two processes would interleave mid-line, so the worker
    first detaches from the inherited sink and then — when the parent is
    tracing to a file — opens its own shard seeded with the parent's span
    context (merged back by :func:`repro.obs.shards.merge_shards` after the
    pool drains).  Metrics incremented inside workers live in the worker's
    copy of the registry and are intentionally not merged — the engine
    accounts for work items in the parent via chunk envelopes.
    """
    os.environ[WORKER_ENV_FLAG] = "1"
    trace.detach()
    if trace_context is not None:
        trace.configure_shard(trace_context)
    if os.environ.get(MEMORY_ENV_FLAG) == "1" and not tracemalloc.is_tracing():
        tracemalloc.start()


def _account_chunk(
    acct: List[Dict[str, Any]],
    sweep: str,
    task: Task,
    mode: str,
    submit_ts: float,
    envelope: Envelope,
    ser_task: Tuple[int, float] = (0, 0.0),
) -> None:
    """Fold a completed chunk's envelope into metrics and a trace event.

    Parent-side only.  ``mode`` is ``"pool"``, ``"thread"``, ``"batched"``,
    ``"serial"`` or ``"retry"``; pool chunks are attributed per worker
    process, thread chunks per thread, and everything that ran inline in
    the parent's main thread to the synthetic worker ``"parent"``.
    """
    if mode == "pool":
        worker = f"pid:{envelope['worker_pid']}"
    elif mode == "thread":
        worker = f"tid:{envelope.get('worker_tid', 0)}"
    else:
        worker = "parent"
    recv_ts = float(envelope["recv_ts"])
    done_ts = float(envelope["done_ts"])
    rec: Dict[str, Any] = {
        "sweep": sweep,
        "cell": task[0],
        "chunk": task[1],
        "trials": task[3] - task[2],
        "mode": mode,
        "worker": worker,
        "submit_ts": submit_ts,
        "recv_ts": recv_ts,
        "done_ts": done_ts,
        "wall_s": float(envelope["wall_s"]),
        "cpu_s": float(envelope["cpu_s"]),
        "queue_wait_s": max(recv_ts - submit_ts, 0.0),
        "result_wait_s": max(time.time() - done_ts, 0.0),
        "ser_task_bytes": int(ser_task[0]),
        "ser_task_s": float(ser_task[1]),
        "ser_result_bytes": int(envelope["ser_result_bytes"]),
        "ser_result_s": float(envelope["ser_result_s"]),
    }
    if "mem_peak_kb" in envelope:
        rec["mem_peak_kb"] = float(envelope["mem_peak_kb"])
    acct.append(rec)
    _QUEUE_WAIT_S.observe(rec["queue_wait_s"])
    _WORKER_WALL_S.observe(rec["wall_s"])
    _WORKER_CPU_S.observe(rec["cpu_s"])
    _SER_TASK_S.inc(rec["ser_task_s"])
    _SER_TASK_BYTES.inc(rec["ser_task_bytes"])
    _SER_RESULT_S.inc(rec["ser_result_s"])
    _SER_RESULT_BYTES.inc(rec["ser_result_bytes"])
    # Live layer: every envelope also lands in the process-global
    # time-series store, timestamped at chunk completion, so /timeseries
    # and the alert rules see per-chunk latency history while the sweep
    # runs (parent-side only, like the counters above).
    _STORE.record("runtime.chunk_wall_s", rec["wall_s"], ts=done_ts)
    _STORE.record("runtime.chunk_queue_wait_s", rec["queue_wait_s"], ts=done_ts)
    # The chunk envelope (minus the result payload) also lands on the
    # always-on flight recorder, so a crash bundle shows which chunks
    # completed in the final seconds even when no trace was configured.
    flightrec_record("runtime.chunk", rec, ts=done_ts)
    trace.event("runtime.chunk", **rec)


def assemble_results(
    cells: Sequence[CellSpec],
    chunk_results: Dict[Tuple[int, int], List[list]],
) -> List[List[Any]]:
    """Re-order completed chunks into per-cell, trial-ordered result lists.

    Permutation-invariant in the completion/submission order of
    ``chunk_results`` (it sorts by trial index), and strict about coverage:
    every trial of every cell must appear exactly once.
    """
    per_cell: List[Dict[int, Any]] = [{} for _ in cells]
    for (cell_index, _chunk_index), pairs in chunk_results.items():
        bucket = per_cell[cell_index]
        for trial_index, result in pairs:
            if trial_index in bucket:
                raise SweepError(
                    f"trial {trial_index} of cell {cell_index} produced twice"
                )
            bucket[int(trial_index)] = result
    ordered: List[List[Any]] = []
    for cell_index, (cell, bucket) in enumerate(zip(cells, per_cell)):
        if len(bucket) != cell.n_trials:
            missing = sorted(set(range(cell.n_trials)) - set(bucket))[:5]
            raise SweepError(
                f"cell {cell_index} ({cell.key!r}): {len(bucket)} of "
                f"{cell.n_trials} trials completed (missing {missing}...)"
            )
        ordered.append([bucket[t] for t in range(cell.n_trials)])
    return ordered


def run_sweep(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    backend: Optional[str] = None,
) -> SweepResult:
    """Run a sweep grid on the selected execution backend.

    Args:
        name: Sweep name; part of every task's seed-derivation key, and
            stamped into the checkpoint header.
        kernel: Pure, picklable ``(params, seed) -> result`` function; the
            result must be JSON-serializable (floats/lists/dicts — it is
            normalized through ``jsonable`` either way, so numpy scalars
            and arrays are folded to plain Python).
        cells: The sweep grid.
        master_seed: Root of all derived seeds.
        workers: Pool/thread count for the process and thread backends;
            ignored by serial and batched execution.
        chunk_size: Trials per work item.  ``None`` picks the backend's
            default (``BATCHED_CHUNK_SIZE`` for batched execution,
            ``DEFAULT_CHUNK_SIZE`` otherwise) — note the chunk size is part
            of the checkpoint header, so resuming a checkpoint under a
            backend with a different default requires passing the original
            chunk size explicitly.
        checkpoint: Optional JSONL progress-file path.
        resume: Skip chunks already present in ``checkpoint``.
        backend: One of :data:`BACKENDS`, or ``None`` for the legacy
            mapping (``workers > 1`` -> process pool, else serial).  See
            :func:`resolve_backend`.

    Returns:
        A :class:`SweepResult` whose ``results`` are bit-identical for any
        ``workers``/chunking/resume/backend combination at the same master
        seed (up to each kernel's documented batched tolerance).
    """
    cells = list(cells)
    require(workers >= 1, "workers must be >= 1")
    total_trials = sum(cell.n_trials for cell in cells)
    mode = resolve_backend(backend, kernel, workers, total_trials)
    if chunk_size is None:
        chunk_size = BATCHED_CHUNK_SIZE if mode == "batched" else DEFAULT_CHUNK_SIZE
    # serial and batched chunks run inline in the parent; only the pool and
    # thread backends actually occupy `workers` execution lanes
    effective_workers = workers if mode in ("process", "thread") else 1
    header = sweep_header(name, master_seed, chunk_size, cells)
    completed, writer = open_checkpoint(checkpoint, resume, header)
    resumed = len(completed)
    if resumed:
        _CHUNKS_RESUMED.inc(resumed)

    tasks = [
        (cell_index, chunk_index, start, stop)
        for cell_index, cell in enumerate(cells)
        for chunk_index, start, stop in iter_chunks(cell.n_trials, chunk_size)
    ]
    pending = [t for t in tasks if (t[0], t[1]) not in completed]
    failures = 0
    progress = SweepProgress(
        name=name,
        total_chunks=len(tasks),
        total_trials=total_trials,
        workers=effective_workers,
        resumed_chunks=resumed,
        resumed_trials=sum(len(pairs) for pairs in completed.values()),
    )

    def finish(task: Task, results: List[list]) -> None:
        cell_index, chunk_index = task[0], task[1]
        completed[(cell_index, chunk_index)] = results
        _CHUNKS_RUN.inc()
        if writer is not None:
            writer.append_chunk(cell_index, chunk_index, results)
        progress.chunk_done(task[3] - task[2])

    acct: List[Dict[str, Any]] = []
    started_mem = False
    if os.environ.get(MEMORY_ENV_FLAG) == "1" and not tracemalloc.is_tracing():
        tracemalloc.start()
        started_mem = True
    watchdog = ChunkWatchdog.create(name, mode, effective_workers) if pending else None
    sweep_timer = Timer()
    with trace.span(
        "runtime.sweep", sweep=name, workers=effective_workers,
        chunks=len(tasks), resumed=resumed, backend=mode,
    ) as span:
        sweep_timer.start()
        start_ts = time.time()
        try:
            if not pending:
                pass
            elif mode == "serial":
                failures = _run_serial(
                    name, kernel, cells, master_seed, pending, finish,
                    progress, acct, watchdog,
                )
            elif mode == "batched":
                failures = _run_batched(
                    name, kernel, cells, master_seed, pending, finish,
                    progress, acct, watchdog,
                )
            elif mode == "thread":
                failures = _run_threads(
                    name, kernel, cells, master_seed, workers, pending, finish,
                    progress, acct, watchdog,
                )
            else:
                failures = _run_pool(
                    name, kernel, cells, master_seed, workers, pending, finish,
                    progress, acct, watchdog,
                )
        finally:
            if watchdog is not None:
                watchdog.stop()
            if started_mem:
                tracemalloc.stop()
            if writer is not None:
                writer.close()
            progress.close()
        sweep_timer.stop()
        stalls = watchdog.stall_count if watchdog is not None else 0
        overhead: Optional[Dict[str, Any]] = None
        if acct:
            overhead = attribute_chunks(
                acct, sweep_timer.wall_s, effective_workers, start_ts, sweep=name
            ).to_dict()
            _SWEEP_OVERHEADS.append(overhead)
            span.record(
                chunk_failures=failures,
                watchdog_stalls=stalls,
                utilization=overhead["utilization"],
                dispatch_frac=overhead["dispatch_frac"],
                serialization_frac=overhead["serialization_frac"],
            )
        else:
            span.record(chunk_failures=failures, watchdog_stalls=stalls)

    results = assemble_results(cells, completed)
    return SweepResult(
        name=name,
        master_seed=int(master_seed),
        cells=cells,
        results=results,
        chunk_failures=failures,
        resumed_chunks=resumed,
        watchdog_stalls=stalls,
        overhead=overhead,
    )


def _retry_serially(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    task: Task,
    error: BaseException,
    where: str,
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress],
    acct_list: List[Dict[str, Any]],
    watchdog: Optional[ChunkWatchdog],
) -> None:
    """Account one failed chunk and re-run it serially in the parent.

    The single fault-tolerance funnel every backend shares: batched
    numerical edge cases, in-thread kernel errors, dead pool workers and
    watchdog-abandoned stalls all land here, so a failed chunk costs its
    speedup rather than the sweep.  ``where`` is prose for the log line
    ("in a thread", "after a watchdog stall", ...).
    """
    cell_index, chunk_index, start, stop = task
    _CHUNK_FAILURES.inc()
    if progress is not None:
        progress.chunk_failed()
    logger.warning(
        "chunk (cell=%d, chunk=%d) of sweep %r failed %s (%s: %s); "
        "retrying serially in-parent",
        cell_index, chunk_index, name, where, type(error).__name__, error,
    )
    trace.event(
        "runtime.chunk_failure", sweep=name, cell=cell_index,
        chunk=chunk_index, error=type(error).__name__,
    )
    retry_ts = time.time()
    envelope = run_chunk_instrumented(
        kernel, name, master_seed, cells[cell_index].params,
        cell_index, chunk_index, start, stop, measure_ser=False,
    )
    _SERIAL_RETRIES.inc()
    if progress is not None:
        progress.retry_done()
    _account_chunk(acct_list, name, task, "retry", retry_ts, envelope)
    finish(task, envelope["pairs"])
    if watchdog is not None:
        watchdog.completed(task, float(envelope["wall_s"]))


def _drain_stalled(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    remaining: Dict["Future[Envelope]", Tuple[Task, float, Tuple[int, float]]],
    mode: str,
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress],
    acct_list: List[Dict[str, Any]],
    watchdog: Optional[ChunkWatchdog],
) -> int:
    """Recover the futures a stalled backend abandoned; returns retries.

    Futures that did complete before (or while) the stall was declared
    are salvaged through the normal accounting path — their results are
    bit-identical to a retry's, but salvaging keeps their envelopes
    honest.  Everything else is cancelled and re-run serially through
    :func:`_retry_serially`; the watchdog has already released
    cooperative fault hangs, so retries of the stalled chunks run clean.
    """
    if watchdog is not None:
        watchdog.abandon_all()
    failures = 0
    for future, (task, submit_ts, ser_cost) in sorted(
        remaining.items(), key=lambda item: item[1][0]
    ):
        salvage_error: Optional[BaseException] = None
        if future.done():
            try:
                envelope = future.result()
                _account_chunk(
                    acct_list, name, task, mode, submit_ts, envelope, ser_cost
                )
                finish(task, envelope["pairs"])
                continue
            except Exception as exc:
                salvage_error = exc
        else:
            future.cancel()
            salvage_error = TimeoutError(
                "chunk abandoned by the watchdog after a stall"
            )
        failures += 1
        _retry_serially(
            name, kernel, cells, master_seed, task, salvage_error,
            "after a watchdog stall", finish, progress, acct_list, watchdog,
        )
    return failures


def _run_serial(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    pending: Sequence[Task],
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress] = None,
    acct: Optional[List[Dict[str, Any]]] = None,
    watchdog: Optional[ChunkWatchdog] = None,
) -> int:
    """Run chunks inline in the parent; retry in-chunk failures once.

    Serial chunks historically could not fail without killing the sweep;
    with cooperative fault hangs (:mod:`repro.runtime.faults`) a chunk
    hung *in the parent* is cancelled by the watchdog mid-call and raises,
    so the serial loop now owns the same retry funnel as the pools.
    """
    failures = 0
    acct_list: List[Dict[str, Any]] = [] if acct is None else acct
    for task in pending:
        cell_index, chunk_index, start, stop = task
        if watchdog is not None:
            watchdog.submitted(task)
        submit_ts = time.time()
        try:
            envelope = run_chunk_instrumented(
                kernel, name, master_seed, cells[cell_index].params,
                cell_index, chunk_index, start, stop, measure_ser=False,
            )
            _account_chunk(acct_list, name, task, "serial", submit_ts, envelope)
            finish(task, envelope["pairs"])
            if watchdog is not None:
                watchdog.completed(task, float(envelope["wall_s"]))
        except Exception as exc:
            failures += 1
            _retry_serially(
                name, kernel, cells, master_seed, task, exc,
                "in the serial loop", finish, progress, acct_list, watchdog,
            )
    return failures


def _run_batched(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    pending: Sequence[Task],
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress] = None,
    acct: Optional[List[Dict[str, Any]]] = None,
    watchdog: Optional[ChunkWatchdog] = None,
) -> int:
    """Run chunks through the kernel's batched twin, in-parent.

    Returns the number of chunks whose batched call failed and were
    re-run serially through the scalar kernel — the same graceful
    degradation the pool backend applies to dead workers, so a numerical
    edge case in the vectorized path (e.g. a singular stacked matrix)
    costs one chunk of speedup instead of the sweep.
    """
    batched = batched_kernel_for(kernel)
    if batched is None:  # resolve_backend guarantees this; belt and braces
        raise SweepError(f"no batched kernel registered for {kernel!r}")
    failures = 0
    acct_list: List[Dict[str, Any]] = [] if acct is None else acct
    for task in pending:
        cell_index, chunk_index, start, stop = task
        if watchdog is not None:
            watchdog.submitted(task)
        submit_ts = time.time()
        try:
            envelope = run_chunk_batched_instrumented(
                batched, name, master_seed, cells[cell_index].params,
                cell_index, chunk_index, start, stop,
            )
            _account_chunk(acct_list, name, task, "batched", submit_ts, envelope)
            finish(task, envelope["pairs"])
            if watchdog is not None:
                watchdog.completed(task, float(envelope["wall_s"]))
        except Exception as exc:
            failures += 1
            _retry_serially(
                name, kernel, cells, master_seed, task, exc,
                "in the batched path", finish, progress, acct_list, watchdog,
            )
    return failures


def _run_threads(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    workers: int,
    pending: Sequence[Task],
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress] = None,
    acct: Optional[List[Dict[str, Any]]] = None,
    watchdog: Optional[ChunkWatchdog] = None,
) -> int:
    """Dispatch chunks to a thread pool; retry failures in the main thread.

    Shares the parent's memory, tracer and metrics registry — no pickling,
    no shards, no worker env flag — so the only overhead is queueing and
    the GIL contention of the kernels' pure-python glue (numpy releases
    the GIL inside BLAS/FFT calls).  Returns the number of chunks retried
    after an in-thread kernel failure or a watchdog stall.

    The result loop polls :func:`concurrent.futures.wait` with the
    watchdog's cadence instead of blocking in ``as_completed`` — a hung
    worker thread can therefore stall the *loop* but not the sweep: on
    ``watchdog.stalled`` the loop breaks out, salvages whatever did
    finish, and re-runs the rest serially.  Threads cannot be killed, so
    shutdown of a stalled pool does not wait: cooperatively-cancelled
    hangs (the injected-fault case) unwind on their own, and a genuinely
    stuck thread is left behind as the documented cost of this backend.
    """
    failures = 0
    acct_list: List[Dict[str, Any]] = [] if acct is None else acct
    stalled = False
    pool = ThreadPoolExecutor(max_workers=workers)
    try:
        futures: Dict[Future[Envelope], Tuple[Task, float, Tuple[int, float]]] = {}
        for task in pending:
            if watchdog is not None:
                watchdog.submitted(task)
            submit_ts = time.time()
            future = pool.submit(
                run_chunk_instrumented, kernel, name, master_seed,
                cells[task[0]].params, task[0], task[1], task[2], task[3],
                False,
            )
            futures[future] = (task, submit_ts, (0, 0.0))
        not_done = set(futures)
        while not_done:
            if watchdog is not None and watchdog.stalled.is_set():
                stalled = True
                break
            timeout = (
                watchdog.poll_interval_s if watchdog is not None else None
            )
            done, not_done = wait(
                not_done, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                task, submit_ts, _ser = futures[future]
                try:
                    envelope = future.result()
                    _account_chunk(
                        acct_list, name, task, "thread", submit_ts, envelope
                    )
                    finish(task, envelope["pairs"])
                    if watchdog is not None:
                        watchdog.completed(task, float(envelope["wall_s"]))
                except Exception as exc:
                    failures += 1
                    _retry_serially(
                        name, kernel, cells, master_seed, task, exc,
                        "in a thread", finish, progress, acct_list, watchdog,
                    )
        if stalled:
            failures += _drain_stalled(
                name, kernel, cells, master_seed,
                {f: futures[f] for f in not_done}, "thread",
                finish, progress, acct_list, watchdog,
            )
    finally:
        pool.shutdown(wait=not stalled, cancel_futures=stalled)
    return failures


def _kill_pool_workers(pool: ProcessPoolExecutor) -> int:
    """Terminate every live worker of a stalled process pool; returns count.

    Required before a no-wait shutdown: ``concurrent.futures`` joins its
    workers at interpreter exit, so a hung worker left alive would block
    process exit long after the sweep itself recovered.
    """
    killed = 0
    for proc in list(getattr(pool, "_processes", {}).values()):
        try:
            if proc.is_alive():
                proc.terminate()
                killed += 1
        except Exception as exc:
            logger.debug("terminating stalled pool worker failed: %s", exc)
    return killed


def _run_pool(
    name: str,
    kernel: Callable[[Any, Any], Any],
    cells: Sequence[CellSpec],
    master_seed: int,
    workers: int,
    pending: Sequence[Task],
    finish: Callable[[Task, List[list]], None],
    progress: Optional[SweepProgress] = None,
    acct: Optional[List[Dict[str, Any]]] = None,
    watchdog: Optional[ChunkWatchdog] = None,
) -> int:
    """Dispatch chunks to a process pool; retry failures serially in-parent.

    Returns the number of chunks that needed a serial retry.  A dead worker
    breaks the whole pool (``BrokenProcessPool``); every not-yet-finished
    future then fails fast and each chunk is re-run serially, so the sweep
    degrades gracefully to in-process execution rather than aborting.

    A *hung* worker never breaks the pool on its own — the result loop
    therefore polls :func:`concurrent.futures.wait` with the watchdog's
    cadence, and on ``watchdog.stalled`` it breaks out, terminates every
    worker (a stuck process cannot be asked nicely, and an un-killed one
    would block interpreter exit), salvages the futures that did finish,
    and re-runs the rest serially through the shared retry funnel.

    When the parent traces to a file, workers write per-process trace
    shards (see :func:`_worker_init`) that are merged back into the parent
    trace once the pool has shut down; :func:`repro.obs.shards
    .merge_shards` tolerates the torn shard a killed worker leaves behind.
    """
    failures = 0
    acct_list: List[Dict[str, Any]] = [] if acct is None else acct
    worker_ctx = trace.worker_context(sweep=name)
    ser_cache: Dict[int, Tuple[int, float]] = {}

    def task_ser_cost(task: Task) -> Tuple[int, float]:
        # Measured once per cell: chunks of a cell ship identical payloads
        # (same kernel/params, different trial bounds), so one probe prices
        # them all without re-pickling every submission.
        cached = ser_cache.get(task[0])
        if cached is None:
            probe = Timer().start()
            try:
                size = len(pickle.dumps(
                    (kernel, name, master_seed, cells[task[0]].params,
                     task[0], task[1], task[2], task[3]),
                    protocol=pickle.HIGHEST_PROTOCOL,
                ))
            except Exception:  # unpicklable probe: let the pool report it
                size = 0
            probe.stop()
            cached = ser_cache[task[0]] = (size, probe.wall_s)
        return cached

    stalled = False
    pool = ProcessPoolExecutor(
        max_workers=workers, initializer=_worker_init, initargs=(worker_ctx,),
    )
    try:
        futures: Dict[Future[Envelope], Tuple[Task, float, Tuple[int, float]]] = {}
        for task in pending:
            ser_cost = task_ser_cost(task)
            if watchdog is not None:
                watchdog.submitted(task)
            submit_ts = time.time()
            future = pool.submit(
                run_chunk_instrumented, kernel, name, master_seed,
                cells[task[0]].params, task[0], task[1], task[2], task[3],
            )
            futures[future] = (task, submit_ts, ser_cost)
        not_done = set(futures)
        while not_done:
            if watchdog is not None and watchdog.stalled.is_set():
                stalled = True
                break
            timeout = (
                watchdog.poll_interval_s if watchdog is not None else None
            )
            done, not_done = wait(
                not_done, timeout=timeout, return_when=FIRST_COMPLETED
            )
            for future in done:
                task, submit_ts, ser_cost = futures[future]
                try:
                    envelope = future.result()
                    _account_chunk(
                        acct_list, name, task, "pool", submit_ts, envelope,
                        ser_cost,
                    )
                    finish(task, envelope["pairs"])
                    if watchdog is not None:
                        watchdog.completed(task, float(envelope["wall_s"]))
                except Exception as exc:  # kernel error or broken pool
                    failures += 1
                    _retry_serially(
                        name, kernel, cells, master_seed, task, exc,
                        "in the pool", finish, progress, acct_list, watchdog,
                    )
        if stalled:
            killed = _kill_pool_workers(pool)
            if killed:
                logger.warning(
                    "watchdog stall on sweep %r: terminated %d pool worker(s)",
                    name, killed,
                )
            failures += _drain_stalled(
                name, kernel, cells, master_seed,
                {f: futures[f] for f in not_done}, "pool",
                finish, progress, acct_list, watchdog,
            )
    finally:
        pool.shutdown(wait=not stalled, cancel_futures=stalled)
    if worker_ctx is not None:
        stats = shards.merge_shards(
            trace,
            worker_ctx["shard_dir"],
            default_parent_id=worker_ctx["parent_span_id"],
            default_depth=worker_ctx["parent_depth"],
        )
        trace.event("runtime.shards_merged", sweep=name, **stats)
    return failures
