"""Deterministic parallel sweep runtime.

Public surface:

* :func:`run_sweep` / :class:`CellSpec` / :class:`SweepResult` — the
  process-pool sweep engine (:mod:`repro.runtime.engine`).
* :func:`seed_sequence` / :func:`task_rng` / :func:`spawn_key` — per-task
  seed derivation (:mod:`repro.runtime.seeding`).
* Checkpoint plumbing (:mod:`repro.runtime.checkpoint`).

See ``docs/parallelism.md`` for the determinism guarantees and the
checkpoint file format.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointMismatch,
    load_completed,
    sweep_header,
)
from repro.runtime.engine import (
    DEFAULT_CHUNK_SIZE,
    MEMORY_ENV_FLAG,
    WORKER_ENV_FLAG,
    CellSpec,
    SweepError,
    SweepResult,
    assemble_results,
    drain_overheads,
    iter_chunks,
    run_chunk,
    run_chunk_instrumented,
    run_sweep,
)
from repro.runtime.seeding import seed_sequence, spawn_key, task_rng

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointMismatch",
    "CellSpec",
    "DEFAULT_CHUNK_SIZE",
    "MEMORY_ENV_FLAG",
    "SweepError",
    "SweepResult",
    "WORKER_ENV_FLAG",
    "assemble_results",
    "drain_overheads",
    "iter_chunks",
    "load_completed",
    "run_chunk",
    "run_chunk_instrumented",
    "run_sweep",
    "seed_sequence",
    "spawn_key",
    "sweep_header",
    "task_rng",
]
