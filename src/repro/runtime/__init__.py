"""Deterministic parallel sweep runtime.

Public surface:

* :func:`run_sweep` / :class:`CellSpec` / :class:`SweepResult` — the
  backend-selecting sweep engine (:mod:`repro.runtime.engine`).
* :data:`BACKENDS` / :func:`resolve_backend` /
  :func:`register_batched_kernel` / :func:`batched_kernel_for` — the
  execution-backend layer (serial / thread / process / batched / auto).
* :func:`seed_sequence` / :func:`task_rng` / :func:`spawn_key` — per-task
  seed derivation (:mod:`repro.runtime.seeding`).
* Checkpoint plumbing (:mod:`repro.runtime.checkpoint`).
* :class:`ChunkWatchdog` — parent-side stall monitor that abandons hung
  workers and reroutes their chunks through the serial-retry path
  (:mod:`repro.runtime.watchdog`); env-gated fault injection for
  exercising it lives in :mod:`repro.runtime.faults`.

See ``docs/parallelism.md`` for the determinism guarantees, the backend
decision table and the checkpoint file format.
"""

from repro.runtime.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointMismatch,
    load_completed,
    sweep_header,
)
from repro.runtime.engine import (
    BACKENDS,
    BATCHED_CHUNK_SIZE,
    DEFAULT_CHUNK_SIZE,
    MEMORY_ENV_FLAG,
    POOL_MIN_TRIALS,
    WORKER_ENV_FLAG,
    CellSpec,
    SweepError,
    SweepResult,
    assemble_results,
    batched_kernel_for,
    drain_overheads,
    iter_chunks,
    register_batched_kernel,
    resolve_backend,
    run_chunk,
    run_chunk_batched,
    run_chunk_instrumented,
    run_sweep,
)
from repro.runtime.faults import HANG_CHUNK_ENV, HangCancelled
from repro.runtime.seeding import seed_sequence, spawn_key, task_rng
from repro.runtime.watchdog import (
    TIMEOUT_ENV,
    WATCHDOG_ENV,
    ChunkWatchdog,
    watchdog_enabled,
)

__all__ = [
    "BACKENDS",
    "BATCHED_CHUNK_SIZE",
    "CHECKPOINT_VERSION",
    "CheckpointMismatch",
    "CellSpec",
    "ChunkWatchdog",
    "DEFAULT_CHUNK_SIZE",
    "HANG_CHUNK_ENV",
    "HangCancelled",
    "MEMORY_ENV_FLAG",
    "POOL_MIN_TRIALS",
    "SweepError",
    "SweepResult",
    "TIMEOUT_ENV",
    "WATCHDOG_ENV",
    "WORKER_ENV_FLAG",
    "watchdog_enabled",
    "assemble_results",
    "batched_kernel_for",
    "drain_overheads",
    "iter_chunks",
    "load_completed",
    "register_batched_kernel",
    "resolve_backend",
    "run_chunk",
    "run_chunk_batched",
    "run_chunk_instrumented",
    "run_sweep",
    "seed_sequence",
    "spawn_key",
    "sweep_header",
    "task_rng",
]
