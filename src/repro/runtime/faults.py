"""Env-gated fault injection for the sweep runtime.

Mirrors the ``REPRO_PHASE_SIGMA_SCALE`` convention from
:mod:`repro.sim.fastsim`: a production code path reads one environment
variable and, when set, degrades on purpose — so the recovery machinery
(watchdog, serial retry, crash bundles) can be exercised end-to-end by
tests and the CI ``blackbox`` smoke job without bespoke test kernels.

``REPRO_FAULT_HANG_CHUNK`` hangs one chunk per matching process:

* ``"30"`` — hang the first chunk seen (any cell) for up to 30 s;
* ``"0:1:30"`` — hang only the chunk of cell 0 containing trial 1.

The hang is *cooperative*: it sleeps in short increments on a cancel
event that :func:`cancel_hangs` (called by the watchdog when it declares
the stall) releases.  A cancelled hang makes the chunk raise
:class:`HangCancelled` — the chunk was declared dead, so it must *not*
produce a result; the engine's serial-retry path re-runs it in the
parent, where the already-set cancel event keeps the fault from
re-triggering.  A hang that times out naturally (watchdog disabled)
just resumes: the chunk was merely slow.  Hung pool **processes** never
see the parent's cancel event and are killed outright by the watchdog;
the serial retry covers their chunks the same way.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional, Tuple

#: Environment variable arming the hanging-chunk fault.
HANG_CHUNK_ENV = "REPRO_FAULT_HANG_CHUNK"

#: Sleep increment of the cooperative hang loop, seconds.
HANG_POLL_S = 0.05

#: Set by the watchdog (or tests) to release every cooperative hang.
_CANCEL = threading.Event()

#: One hang per process: armed state, cleared after the fault triggers.
_TRIGGERED = threading.Event()


class HangCancelled(RuntimeError):
    """An injected hang was cancelled by the watchdog mid-chunk."""


def parse_hang_spec(raw: str) -> Optional[Tuple[Optional[int], Optional[int], float]]:
    """``(cell, trial, seconds)`` from a spec string, or None when invalid.

    Accepts ``"SECONDS"`` (first chunk anywhere) or
    ``"CELL:TRIAL:SECONDS"`` (the chunk of ``CELL`` containing
    ``TRIAL``).
    """
    raw = raw.strip()
    if not raw:
        return None
    parts = raw.split(":")
    try:
        if len(parts) == 1:
            return None, None, float(parts[0])
        if len(parts) == 3:
            return int(parts[0]), int(parts[1]), float(parts[2])
    except ValueError:
        return None
    return None


def cancel_hangs() -> None:
    """Release every cooperative hang in this process (watchdog / tests)."""
    _CANCEL.set()


def hangs_cancelled() -> bool:
    """True once :func:`cancel_hangs` has run in this process."""
    return _CANCEL.is_set()


def reset() -> None:
    """Re-arm the fault and clear the cancel event (tests)."""
    _CANCEL.clear()
    _TRIGGERED.clear()


def maybe_hang_chunk(cell_index: int, start: int, stop: int) -> None:
    """Hang here when ``REPRO_FAULT_HANG_CHUNK`` targets this chunk.

    Called by the engine's chunk runners before the trial loop.  Raises
    :class:`HangCancelled` when the hang was released by the watchdog
    (the chunk was declared dead and its serial retry owns the result);
    returns normally when the fault does not apply or the hang timed out
    on its own.  At most one hang per process, and never once the cancel
    event is set — so the retry of a stalled chunk runs through clean.
    """
    raw = os.environ.get(HANG_CHUNK_ENV)
    if not raw or _TRIGGERED.is_set() or _CANCEL.is_set():
        return
    spec = parse_hang_spec(raw)
    if spec is None:
        return
    cell, trial, seconds = spec
    if cell is not None and cell != cell_index:
        return
    if trial is not None and not (start <= trial < stop):
        return
    _TRIGGERED.set()
    deadline = time.monotonic() + max(seconds, 0.0)
    while time.monotonic() < deadline:
        if _CANCEL.wait(timeout=HANG_POLL_S):
            raise HangCancelled(
                f"injected hang on chunk (cell={cell_index}, trials "
                f"[{start}, {stop})) cancelled by the watchdog"
            )
