"""Deterministic per-task seed derivation for parallel sweeps.

Every Monte Carlo draw of a sweep gets its own independent RNG stream,
derived from ``(master_seed, sweep_name, cell_index, draw_index)`` through
``numpy.random.SeedSequence``'s spawn-key mechanism.  Because the stream
depends only on those four coordinates — never on which worker ran the
task, in what order, or how trials were chunked — a sweep's results are
bit-identical across serial runs, any worker count, and checkpoint/resume.

The spawn key encodes the sweep name as a length-prefixed byte tuple, so
distinct ``(sweep, cell, draw)`` triples always map to distinct keys (no
hashing, no collision budget): the length prefix makes the encoding
uniquely decodable, which is what the injectivity property test in
``tests/properties/test_property_runtime.py`` pins down.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.validation import require


def _encode_name(name: str) -> Tuple[int, ...]:
    """Length-prefixed byte encoding of the sweep name (uniquely decodable)."""
    data = name.encode("utf-8")
    return (len(data), *data)


def spawn_key(sweep: str, cell_index: int, draw_index: int) -> Tuple[int, ...]:
    """The ``SeedSequence`` spawn key of one (sweep, cell, draw) coordinate.

    Injective: two distinct coordinate triples never share a key, because
    the name is length-prefixed and the two indices sit at fixed positions
    after it.
    """
    require(isinstance(sweep, str) and sweep != "", "sweep name must be a non-empty str")
    require(int(cell_index) >= 0, "cell_index must be non-negative")
    require(int(draw_index) >= 0, "draw_index must be non-negative")
    return (*_encode_name(sweep), int(cell_index), int(draw_index))


def seed_sequence(
    master_seed: int, sweep: str, cell_index: int, draw_index: int
) -> np.random.SeedSequence:
    """The independent ``SeedSequence`` of one task coordinate."""
    return np.random.SeedSequence(
        entropy=int(master_seed),
        spawn_key=spawn_key(sweep, cell_index, draw_index),
    )


def task_rng(
    master_seed: int, sweep: str, cell_index: int, draw_index: int
) -> np.random.Generator:
    """A fresh generator for one task coordinate (convenience wrapper)."""
    return np.random.default_rng(seed_sequence(master_seed, sweep, cell_index, draw_index))
