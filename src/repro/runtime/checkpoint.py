"""Chunk-granular checkpoint files for resumable sweeps.

A checkpoint is a JSONL progress file: one header line identifying the
sweep, then one line per completed (cell, chunk) work item.  The format is
append-only and flushed per record, so a killed run leaves at worst one
truncated trailing line, which resume detects and drops.

Header record::

    {"type": "header", "version": 1, "sweep": "fig9", "master_seed": 4,
     "chunk_size": 4, "cells": [{"key": ["high", 2], "n_trials": 20}, ...]}

Chunk record::

    {"type": "chunk", "cell": 0, "chunk": 1,
     "results": [[4, <result>], [5, <result>], ...]}

``results`` pairs are ``[trial_index, kernel_result]`` with the kernel
result already passed through :func:`repro.obs.events.jsonable`, so a
resumed aggregate is bit-identical to an uninterrupted one (Python's JSON
float round-trip is exact).

Resume refuses a checkpoint whose header disagrees with the requested
sweep (name, master seed, chunk size, or cell layout): silently mixing
results from a different configuration is exactly the failure mode that
would make the golden-result tests meaningless.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import get_logger
from repro.obs.events import jsonable

logger = get_logger(__name__)

#: Bump on breaking changes to the record layout.
CHECKPOINT_VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different sweep configuration."""


def sweep_header(
    sweep: str, master_seed: int, chunk_size: int, cells: Sequence[Any]
) -> Dict[str, Any]:
    """The header record identifying one sweep configuration."""
    return {
        "type": "header",
        "version": CHECKPOINT_VERSION,
        "sweep": sweep,
        "master_seed": int(master_seed),
        "chunk_size": int(chunk_size),
        "cells": [
            {"key": jsonable(cell.key), "n_trials": int(cell.n_trials)}
            for cell in cells
        ],
    }


def load_completed(
    path: str, expected_header: Dict[str, Any]
) -> Dict[Tuple[int, int], List[list]]:
    """Read a checkpoint, returning ``{(cell, chunk): [[trial, result], ...]}``.

    Raises :class:`CheckpointMismatch` if the header does not match
    ``expected_header``.  A truncated trailing line (killed run) is dropped
    with a warning; corruption anywhere else raises.
    """
    completed: Dict[Tuple[int, int], List[list]] = {}
    with open(path) as f:
        lines = f.read().split("\n")
    records = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if i >= len(lines) - 2:  # interrupted mid-write on the last line
                logger.warning("dropping truncated trailing checkpoint line in %s", path)
                continue
            raise
    if not records:
        return completed
    header, body = records[0], records[1:]
    if header.get("type") != "header":
        raise CheckpointMismatch(f"{path}: first record is not a header")
    comparable = {k: header.get(k) for k in expected_header}
    if comparable != expected_header:
        raise CheckpointMismatch(
            f"{path}: checkpoint belongs to a different sweep "
            f"(found {comparable!r}, expected {expected_header!r})"
        )
    for record in body:
        if record.get("type") != "chunk":
            continue
        completed[(int(record["cell"]), int(record["chunk"]))] = record["results"]
    return completed


class CheckpointWriter:
    """Appends chunk records to a progress file, flushing per record."""

    def __init__(self, path: str, header: Dict[str, Any], fresh: bool):
        self.path = path
        mode = "w" if fresh else "a"
        self._file = open(path, mode)
        if fresh or os.path.getsize(path) == 0:
            self._write(header)

    def _write(self, record: Dict[str, Any]) -> None:
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self._file.flush()

    def append_chunk(
        self, cell_index: int, chunk_index: int, results: List[list]
    ) -> None:
        self._write(
            {
                "type": "chunk",
                "cell": int(cell_index),
                "chunk": int(chunk_index),
                "results": results,
            }
        )

    def close(self) -> None:
        self._file.close()


def open_checkpoint(
    path: Optional[str],
    resume: bool,
    header: Dict[str, Any],
) -> Tuple[Dict[Tuple[int, int], List[list]], Optional[CheckpointWriter]]:
    """Set up checkpointing for one sweep run.

    Returns the already-completed chunks (empty unless resuming an existing
    file) and a writer for new ones (``None`` when checkpointing is off).
    """
    if path is None:
        return {}, None
    completed: Dict[Tuple[int, int], List[list]] = {}
    if resume and os.path.exists(path):
        completed = load_completed(path, header)
        logger.info("resuming %s: %d chunks already complete", path, len(completed))
        return completed, CheckpointWriter(path, header, fresh=False)
    return completed, CheckpointWriter(path, header, fresh=True)
