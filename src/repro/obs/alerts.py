"""Declarative alert rules evaluated live over the time-series store.

JMB's operating point degrades *quietly*: §7.3 shows joint-beamforming
gains collapse once the lead/slave phase error leaves a narrow budget, and
a sweep whose worker pool half-stalls still finishes — just late.  Both
failure modes are invisible in an exit snapshot and obvious in a live
window.  This module turns windows into verdicts.

An :class:`AlertRule` names a series in the
:class:`~repro.obs.timeseries.TimeSeriesStore`, a windowed statistic, a
comparison and a threshold.  Three rule kinds share that shape:

* ``threshold`` — plain comparison of the statistic against the bound.
* ``budget`` — identical mechanics, but the bound is a *paper budget*
  (the built-in §7.3 phase-error rules use
  ``PHASE_ERROR_BUDGET_{MEDIAN,P95}_RAD`` from :mod:`repro.core.phasesync`);
  kept distinct so ledger alarms and dashboards can tell "tuning knob"
  from "reproduction-invalidating breach".
* ``rate_of_change`` — per-second slope of the series over the window,
  compared against the bound (catches runaway drift before the level
  rule trips).

Two anti-flap mechanisms, both opt-in per rule:

* **for-duration debouncing** (``for_s``): a breach must persist — the
  rule sits in ``pending`` until the condition has held ``for_s``
  seconds, only then transitions to ``firing``.
* **hysteresis** (``clear``): once firing, the rule clears only when the
  statistic crosses the ``clear`` level (defaults to the threshold), so a
  value oscillating around the bound does not strobe.

:class:`AlertEngine` owns the rule set and the ok/pending/firing state
machine; every transition becomes an ``obs.alert`` trace event, a logger
line, and a dict handed to the SSE bus by :mod:`repro.obs.serve`.  Rules
load from TOML (``runs/alerts.toml`` by default) layered over
:func:`builtin_rules`; TOML parsing needs :mod:`tomllib` (Python 3.11+)
and degrades to the built-ins with a warning on 3.10.
"""

from __future__ import annotations

import dataclasses
import os
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.flightrec import record as flightrec_record
from repro.obs.logging import get_logger
from repro.obs.timeseries import TimeSeriesStore
from repro.obs.tracer import trace

logger = get_logger("obs.alerts")

#: Default rules file, relative to the working directory (ledger-adjacent).
DEFAULT_RULES_PATH = os.path.join("runs", "alerts.toml")

#: Recognised rule kinds / statistics / comparison directions.
KINDS = ("threshold", "budget", "rate_of_change")
STATS = ("last", "mean", "min", "max", "p50", "p95")
OPS = ("above", "below")

#: Rule names follow the ``domain.metric`` convention that OBS002 enforces
#: for metric names (and OBS004 advises for alert rules): lowercase dotted
#: segments, so ledger alarms and exported series sort into families.
RULE_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


@dataclasses.dataclass(frozen=True)
class AlertRule:
    """One declarative rule over a named series.

    Args:
        name: Rule identity (``domain.metric`` convention, see OBS004).
        series: Time-series name the rule watches.
        threshold: Bound the windowed statistic is compared against.
        kind: ``threshold`` | ``budget`` | ``rate_of_change``.
        stat: Windowed statistic (ignored for ``rate_of_change``).
        op: ``above`` fires when value > threshold, ``below`` when <.
        clear: Hysteresis level the value must re-cross to clear a firing
            rule; defaults to ``threshold`` (no hysteresis).
        for_s: Seconds a breach must persist before ``pending`` becomes
            ``firing`` (0 = fire immediately).
        window_s: Lookback window the statistic is computed over.
        min_count: Points required in the window before the rule judges
            at all (insufficient data reads as ``ok``).
        severity: ``warning`` or ``critical`` (advisory; ledger-visible).
        description: Human explanation shown by ``/alerts`` and ``watch``.
    """

    name: str
    series: str
    threshold: float
    kind: str = "threshold"
    stat: str = "last"
    op: str = "above"
    clear: Optional[float] = None
    for_s: float = 0.0
    window_s: float = 30.0
    min_count: int = 1
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown alert kind {self.kind!r} (want {KINDS})")
        if self.stat not in STATS:
            raise ValueError(f"unknown alert stat {self.stat!r} (want {STATS})")
        if self.op not in OPS:
            raise ValueError(f"unknown alert op {self.op!r} (want {OPS})")
        if self.window_s <= 0:
            raise ValueError("window_s must be > 0")
        if self.min_count < 1:
            raise ValueError("min_count must be >= 1")
        if not RULE_NAME_RE.match(self.name):
            logger.warning(
                "alert rule %r does not follow the domain.metric naming "
                "convention (see lint rule OBS004)", self.name,
            )

    def clear_level(self) -> float:
        return self.threshold if self.clear is None else self.clear

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class AlertState:
    """Mutable evaluation state for one rule: ok -> pending -> firing."""

    __slots__ = ("rule", "status", "since", "value", "fired_count",
                 "worst_value", "last_transition_ts")

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.status = "ok"
        self.since: Optional[float] = None  # breach onset (pending/firing)
        self.value: Optional[float] = None
        self.fired_count = 0
        self.worst_value: Optional[float] = None
        self.last_transition_ts: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule.name,
            "series": self.rule.series,
            "kind": self.rule.kind,
            "stat": self.rule.stat,
            "op": self.rule.op,
            "threshold": self.rule.threshold,
            "severity": self.rule.severity,
            "status": self.status,
            "since": self.since,
            "value": self.value,
            "fired_count": self.fired_count,
            "worst_value": self.worst_value,
            "description": self.rule.description,
        }


class AlertEngine:
    """Evaluates a rule set against a store; owns per-rule state machines."""

    def __init__(self, rules: Sequence[AlertRule]):
        self._states: Dict[str, AlertState] = {
            r.name: AlertState(r) for r in rules
        }

    @property
    def rules(self) -> List[AlertRule]:
        return [s.rule for s in self._states.values()]

    def state(self, name: str) -> Optional[AlertState]:
        return self._states.get(name)

    # -- evaluation ------------------------------------------------------------

    def _rule_value(
        self, rule: AlertRule, store: TimeSeriesStore, now: float
    ) -> Optional[float]:
        """Windowed statistic for one rule; None = not enough data."""
        series = store.get(rule.series)
        if series is None:
            return None
        since = now - rule.window_s
        if rule.kind == "rate_of_change":
            pts = series.points(since=since)
            if len(pts) < max(rule.min_count, 2):
                return None
            (t0, v0), (t1, v1) = pts[0], pts[-1]
            if t1 <= t0:
                return None
            return (v1 - v0) / (t1 - t0)
        roll = series.rollup(since=since)
        if roll["count"] < rule.min_count:
            return None
        return float(roll[rule.stat])

    @staticmethod
    def _breached(rule: AlertRule, value: float) -> bool:
        return value > rule.threshold if rule.op == "above" else value < rule.threshold

    @staticmethod
    def _cleared(rule: AlertRule, value: float) -> bool:
        level = rule.clear_level()
        return value <= level if rule.op == "above" else value >= level

    def evaluate(
        self, store: TimeSeriesStore, now: Optional[float] = None
    ) -> List[dict]:
        """One evaluation pass; returns the list of state *transitions*.

        Each transition dict carries ``rule``/``series``/``status`` (the
        new state), ``previous``, the triggering ``value`` and the rule's
        threshold/severity — the exact payload the SSE ``alert`` frames
        and ledger alarms are built from.
        """
        if now is None:
            now = time.time()
        transitions: List[dict] = []
        for state in self._states.values():
            rule = state.rule
            value = self._rule_value(rule, store, now)
            state.value = value
            if value is None:
                continue  # insufficient data: hold current status
            if state.status in ("pending", "firing"):
                if state.worst_value is None:
                    state.worst_value = value
                elif rule.op == "above":
                    state.worst_value = max(state.worst_value, value)
                else:
                    state.worst_value = min(state.worst_value, value)
            new_status = state.status
            if state.status == "ok":
                if self._breached(rule, value):
                    new_status = "firing" if rule.for_s <= 0 else "pending"
                    state.since = now
                    state.worst_value = value
            elif state.status == "pending":
                if self._cleared(rule, value):
                    new_status = "ok"
                    state.since = None
                elif state.since is not None and now - state.since >= rule.for_s:
                    new_status = "firing"
            elif state.status == "firing":
                if self._cleared(rule, value):
                    new_status = "ok"
                    state.since = None
            if new_status == state.status:
                continue
            previous, state.status = state.status, new_status
            state.last_transition_ts = now
            if new_status == "firing":
                state.fired_count += 1
            transition = {
                "ts": now,
                "rule": rule.name,
                "series": rule.series,
                "kind": rule.kind,
                "status": new_status,
                "previous": previous,
                "value": value,
                "threshold": rule.threshold,
                "severity": rule.severity,
                "description": rule.description,
            }
            transitions.append(transition)
            flightrec_record("obs.alert", transition, ts=now)
            trace.event("obs.alert", **transition)
            log = logger.warning if new_status == "firing" else logger.info
            log(
                "alert %s: %s -> %s (%s %s=%0.6g vs threshold %0.6g)",
                rule.name, previous, new_status, rule.series,
                "rate" if rule.kind == "rate_of_change" else rule.stat,
                value, rule.threshold,
            )
        return transitions

    # -- views -----------------------------------------------------------------

    def firing(self) -> List[dict]:
        return [s.to_dict() for s in self._states.values() if s.status == "firing"]

    def to_dict(self) -> dict:
        return {name: s.to_dict() for name, s in sorted(self._states.items())}

    def fired_alarms(self) -> List[dict]:
        """Ledger-alarm dicts for every rule that fired at least once.

        Shape mirrors :func:`repro.obs.regress.sync_health_alarms` entries
        so ``RunRecord.alarms`` consumers see one vocabulary.
        """
        alarms = []
        for state in self._states.values():
            if state.fired_count == 0:
                continue
            alarms.append({
                "kind": f"alert_{state.rule.kind}",
                "rule": state.rule.name,
                "metric": state.rule.series,
                "stat": state.rule.stat,
                "value": state.worst_value,
                "threshold": state.rule.threshold,
                "severity": state.rule.severity,
                "count": state.fired_count,
            })
        return alarms


# ---------------------------------------------------------------------------
# Rule sources: built-ins + TOML overlay
# ---------------------------------------------------------------------------


def builtin_rules() -> Tuple[AlertRule, ...]:
    """Default rules: §7.3 phase budgets, utilization floor, watchdog stalls.

    The budget thresholds come straight from
    :mod:`repro.core.phasesync` (imported lazily — this module stays
    importable without pulling the PHY stack at package-init time).
    """
    from repro.core.phasesync import (
        PHASE_ERROR_BUDGET_MEDIAN_RAD,
        PHASE_ERROR_BUDGET_P95_RAD,
    )

    rules: List[AlertRule] = []
    for domain in ("fastsim", "mac"):
        series = f"{domain}.phase_error_rad"
        rules.append(AlertRule(
            name=f"{domain}.phase_error_p50",
            series=series,
            kind="budget",
            stat="p50",
            op="above",
            threshold=PHASE_ERROR_BUDGET_MEDIAN_RAD,
            window_s=60.0,
            min_count=8,
            severity="warning",
            description=(
                "median lead/slave phase error above the paper's §7.3 "
                "median budget"
            ),
        ))
        rules.append(AlertRule(
            name=f"{domain}.phase_error_p95",
            series=series,
            kind="budget",
            stat="p95",
            op="above",
            threshold=PHASE_ERROR_BUDGET_P95_RAD,
            window_s=60.0,
            min_count=8,
            severity="critical",
            description=(
                "p95 lead/slave phase error above the §7.3 budget — "
                "joint-beamforming gains are collapsing"
            ),
        ))
    rules.append(AlertRule(
        name="runtime.watchdog_stall",
        series="runtime.watchdog_stalls",
        kind="threshold",
        stat="last",
        op="above",
        threshold=0.0,
        window_s=3600.0,
        min_count=1,
        severity="critical",
        description=(
            "the worker watchdog declared a stalled chunk — a hung "
            "worker was abandoned and its work re-run serially; see the "
            "runs/crash-<runid>/ forensics bundle"
        ),
    ))
    rules.append(AlertRule(
        name="runtime.worker_utilization_floor",
        series="runtime.worker_utilization",
        kind="threshold",
        stat="mean",
        op="below",
        threshold=0.5,
        clear=0.6,
        for_s=5.0,
        window_s=20.0,
        min_count=4,
        severity="warning",
        description=(
            "worker pool running below half busy for 5s — dispatch "
            "starvation or a straggler tail"
        ),
    ))
    return tuple(rules)


def _rule_from_toml(entry: dict) -> AlertRule:
    known = {f.name for f in dataclasses.fields(AlertRule)}
    unknown = set(entry) - known - {"enabled"}
    if unknown:
        raise ValueError(
            f"unknown alert-rule keys {sorted(unknown)} "
            f"(known: {sorted(known)})"
        )
    kwargs = {k: v for k, v in entry.items() if k in known}
    for key in ("name", "series"):
        if key not in kwargs:
            raise ValueError(f"alert rule missing required key {key!r}: {entry}")
    if "threshold" not in kwargs:
        raise ValueError(f"alert rule {kwargs['name']!r} missing 'threshold'")
    return AlertRule(**kwargs)


def load_rules(path: Optional[str] = None) -> Tuple[AlertRule, ...]:
    """Built-in rules overlaid with ``[[rule]]`` tables from a TOML file.

    TOML rules replace same-named built-ins; ``enabled = false`` drops a
    built-in without replacement.  A missing file (or a missing
    :mod:`tomllib`, i.e. Python < 3.11) yields the built-ins — with a
    warning in the latter case, since the user asked for a file we
    cannot parse.
    """
    rules = {r.name: r for r in builtin_rules()}
    explicit = path is not None
    if path is None:
        path = DEFAULT_RULES_PATH
    if not os.path.exists(path):
        if explicit:
            raise FileNotFoundError(f"alert rules file not found: {path}")
        return tuple(rules.values())
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib TOML parser is absent
        logger.warning(
            "cannot parse %s: tomllib requires Python >= 3.11; "
            "using built-in alert rules only", path,
        )
        return tuple(rules.values())
    with open(path, "rb") as f:
        doc = tomllib.load(f)
    for entry in doc.get("rule", []):
        name = entry.get("name")
        if not name:
            raise ValueError(f"alert rule missing required key 'name': {entry}")
        if entry.get("enabled", True) is False:
            rules.pop(name, None)
            continue
        rules[name] = _rule_from_toml(entry)
    return tuple(rules.values())
