"""Run ledger: an append-only JSONL history of every experiment run.

PR 1 made a single run observable (traces + metrics); the ledger makes
runs *longitudinal*.  Every CLI/sweep invocation appends one
:class:`RunRecord` — run id, git sha, config hash, master seed, platform,
duration, headline metrics, artifact paths, alarms — to
``<runs_dir>/ledger.jsonl``.  ``repro obs runs list/show/diff`` queries
it, :mod:`repro.obs.regress` compares records against a committed
baseline, and :mod:`repro.obs.export` renders ledger slices to
OpenMetrics/CSV.

The file format is deliberately boring: one self-contained JSON object
per line, append-only, truncation-safe (a half-written trailing line is
skipped on read, mirroring the sweep checkpoint reader).  The default
directory is ``runs/`` under the current working directory, overridable
with the ``REPRO_RUNS_DIR`` environment variable or ``--ledger`` on the
CLI.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.events import jsonable

#: Version stamped into each ledger record; bump on breaking changes.
LEDGER_SCHEMA = 1

#: Environment variable overriding the default ledger directory.
RUNS_DIR_ENV = "REPRO_RUNS_DIR"

#: Ledger file name inside the runs directory.
LEDGER_FILENAME = "ledger.jsonl"


def default_runs_dir() -> Path:
    """The runs directory: ``$REPRO_RUNS_DIR`` or ``./runs``."""
    return Path(os.environ.get(RUNS_DIR_ENV) or "runs")


def new_run_id(now: Optional[float] = None) -> str:
    """A sortable, collision-resistant run id (``r20260806-120301-3f9a``)."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime(now))
    return f"r{stamp}-{secrets.token_hex(2)}"


@dataclass
class RunRecord:
    """One ledger line: everything needed to reproduce and compare a run.

    Attributes:
        run_id: Unique, time-sortable identifier.
        ts: Unix time the run started.
        command: CLI command (``figure``, ``simulate``, ``bench``, ...).
        argv: The raw argument vector, for exact replay.
        status: ``"ok"`` or ``"error"`` (non-zero exit / exception).
        duration_s: Wall-clock duration of the run.
        git_sha / git_dirty: Code identity (None outside a checkout).
        config_hash: Short hash of the normalized parameter dict.
        config: The normalized parameter dict itself.
        master_seed: Root RNG seed, when the run has one.
        platform: Machine snapshot (OS, Python, numpy, CPU count).
        metrics: Flat ``{name: float}`` headline metrics of the run.
        artifacts: ``{kind: path}`` of files the run produced
            (trace, metrics snapshot, checkpoint, ...).
        alarms: Domain alarms raised during the run (e.g. the sync-health
            monitor's phase-error-budget breach).
    """

    run_id: str
    ts: float
    command: str
    argv: List[str] = field(default_factory=list)
    status: str = "ok"
    duration_s: float = 0.0
    git_sha: Optional[str] = None
    git_dirty: Optional[bool] = None
    config_hash: Optional[str] = None
    config: Dict = field(default_factory=dict)
    master_seed: Optional[int] = None
    platform: Dict = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    artifacts: Dict[str, str] = field(default_factory=dict)
    alarms: List[Dict] = field(default_factory=list)
    schema: int = LEDGER_SCHEMA

    def to_dict(self) -> dict:
        return jsonable(asdict(self))

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class Ledger:
    """Append/query interface over one ``ledger.jsonl`` file."""

    def __init__(self, runs_dir: Union[str, Path, None] = None):
        self.runs_dir = Path(runs_dir) if runs_dir is not None else default_runs_dir()
        self.path = self.runs_dir / LEDGER_FILENAME

    # -- writing -------------------------------------------------------------

    def append(self, record: RunRecord) -> Path:
        """Append one record (creates the runs directory on first use)."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(json.dumps(record.to_dict(), separators=(",", ":")))
            f.write("\n")
        return self.path

    # -- reading -------------------------------------------------------------

    def records(self, command: Optional[str] = None) -> Iterator[RunRecord]:
        """Yield records oldest-first; skips a truncated trailing line.

        A malformed line *before* the last one raises ``ValueError`` — that
        is corruption worth surfacing, not a torn append.
        """
        if not self.path.exists():
            return
        with open(self.path) as f:
            lines = f.read().splitlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    return  # torn trailing append; everything before is good
                raise ValueError(f"{self.path}: corrupt ledger line {i + 1}")
            record = RunRecord.from_dict(data)
            if command is None or record.command == command:
                yield record

    def last(self, n: int = 10, command: Optional[str] = None) -> List[RunRecord]:
        """The most recent ``n`` records, newest last."""
        return list(self.records(command=command))[-n:]

    def latest(self, command: Optional[str] = None) -> Optional[RunRecord]:
        """The most recent record (optionally of one command), if any."""
        records = self.last(1, command=command)
        return records[0] if records else None

    def get(self, run_id: str) -> Optional[RunRecord]:
        """Look up a record by exact id, or by unambiguous prefix."""
        matches = [r for r in self.records() if r.run_id == run_id]
        if matches:
            return matches[-1]
        prefixed = [r for r in self.records() if r.run_id.startswith(run_id)]
        if len(prefixed) == 1:
            return prefixed[0]
        return None


# ---------------------------------------------------------------------------
# Record comparison (``repro obs runs diff`` and regression detection)
# ---------------------------------------------------------------------------


def diff_metrics(
    old: Dict[str, float], new: Dict[str, float]
) -> List[dict]:
    """Per-metric deltas between two headline-metric dicts.

    Returns one row per metric present in either dict, sorted by name:
    ``{"metric", "old", "new", "delta", "rel"}`` with ``None`` where a
    side is missing and ``rel`` (fractional change) only when computable.
    """
    rows = []
    for name in sorted(set(old) | set(new)):
        a, b = old.get(name), new.get(name)
        row = {"metric": name, "old": a, "new": b, "delta": None, "rel": None}
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            row["delta"] = b - a
            if a != 0:
                row["rel"] = (b - a) / abs(a)
        rows.append(row)
    return rows


def diff_records(old: RunRecord, new: RunRecord) -> dict:
    """Structured comparison of two runs: identity changes + metric deltas."""
    identity = {}
    for key in ("command", "git_sha", "config_hash", "master_seed"):
        a, b = getattr(old, key), getattr(new, key)
        if a != b:
            identity[key] = {"old": a, "new": b}
    return {
        "old": old.run_id,
        "new": new.run_id,
        "identity": identity,
        "duration": {
            "old": old.duration_s,
            "new": new.duration_s,
            "delta": new.duration_s - old.duration_s,
        },
        "metrics": diff_metrics(old.metrics, new.metrics),
    }


# ---------------------------------------------------------------------------
# Text rendering for the CLI
# ---------------------------------------------------------------------------


def summarize_alarms(alarms: List[Dict], max_width: int = 48) -> str:
    """One-cell alarm summary: count plus the raising rules/kinds.

    A bare count hid *what* went wrong; now that live alert rules append
    alarms too (:mod:`repro.obs.alerts`), the list table names them:
    ``2: fastsim.phase_error_p95,mac.phase_error_p50``.  Truncated with
    an ellipsis past ``max_width``.
    """
    if not alarms:
        return "-"
    names = [str(a.get("rule") or a.get("kind") or "?") for a in alarms]
    cell = f"{len(alarms)}: " + ",".join(names)
    if len(cell) > max_width:
        cell = cell[: max_width - 1] + "…"
    return cell


def format_list(records: List[RunRecord]) -> str:
    """The ``repro obs runs list`` table."""
    if not records:
        return "ledger is empty"
    lines = [
        f"{'run_id':<22} {'when (UTC)':<16} {'command':<10} {'sha':<8} "
        f"{'seed':>6} {'dur(s)':>8} {'status':<6} alarms"
    ]
    for r in records:
        when = time.strftime("%m-%d %H:%M:%S", time.gmtime(r.ts))
        sha = (r.git_sha or "-")[:7] + ("*" if r.git_dirty else "")
        seed = str(r.master_seed) if r.master_seed is not None else "-"
        lines.append(
            f"{r.run_id:<22} {when:<16} {r.command:<10} {sha:<8} "
            f"{seed:>6} {r.duration_s:>8.2f} {r.status:<6} "
            f"{summarize_alarms(r.alarms)}"
        )
    return "\n".join(lines)


def format_show(record: RunRecord) -> str:
    """The ``repro obs runs show`` rendering (pretty JSON)."""
    return json.dumps(record.to_dict(), indent=2, sort_keys=True)


def format_diff(diff: dict) -> str:
    """The ``repro obs runs diff`` table."""
    lines = [f"diff {diff['old']} -> {diff['new']}"]
    for key, change in sorted(diff["identity"].items()):
        lines.append(f"  {key}: {change['old']!r} -> {change['new']!r}")
    d = diff["duration"]
    lines.append(
        f"  duration_s: {d['old']:.3f} -> {d['new']:.3f} ({d['delta']:+.3f})"
    )
    rows = diff["metrics"]
    if rows:
        lines.append(f"  {'metric':<36} {'old':>12} {'new':>12} {'delta':>12} {'rel':>8}")
        for row in rows:
            old = "-" if row["old"] is None else f"{row['old']:.6g}"
            new = "-" if row["new"] is None else f"{row['new']:.6g}"
            delta = "-" if row["delta"] is None else f"{row['delta']:+.4g}"
            rel = "-" if row["rel"] is None else f"{row['rel']:+.1%}"
            lines.append(f"  {row['metric']:<36} {old:>12} {new:>12} {delta:>12} {rel:>8}")
    else:
        lines.append("  (no headline metrics on either run)")
    return "\n".join(lines)
