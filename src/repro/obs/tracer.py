"""Span-based tracer with a JSONL backend and a ~zero-cost null path.

Usage::

    from repro.obs import trace

    with trace.span("joint_tx", n_streams=4) as sp:
        ...
        sp.record(decode_ok=3)

    @traced
    def precode(...): ...

The global tracer starts *disabled*: ``trace.span(...)`` then returns one
shared :class:`NullSpan` instance whose ``__enter__``/``__exit__`` do
nothing — the hot-path cost is one attribute test and a dict that is never
built (keyword arguments to ``span`` are only evaluated by the caller, so
avoid expensive expressions in always-on call sites).  ``trace.configure(
path)`` switches on the JSONL backend; spans then record wall-clock
(``perf_counter``) and CPU (``process_time``) durations, nesting depth and
parent linkage, and are exception-safe: a span exited by an exception still
emits its record (with ``error`` set) and never swallows the exception.

Pool workers do not share the parent's sink.  A forked child inherits the
parent's open file, and two processes appending to one stream interleave
mid-line — so workers first call :meth:`Tracer.detach` (drop the inherited
writer *without* flushing or closing it, which would corrupt the parent's
buffer) and then, when the parent was tracing to a file, reopen their own
*shard*: a per-worker JSONL file under ``<trace>.shards/`` seeded with the
parent's span context (see :meth:`Tracer.worker_context` /
:meth:`Tracer.configure_shard`).  After the pool drains,
:func:`repro.obs.shards.merge_shards` folds every shard back into the live
parent trace with remapped span ids, restoring one coherent tree.
"""

from __future__ import annotations

import atexit
import functools
import itertools
import os
import threading
import time
from typing import IO, Any, Dict, Optional, Union

from repro.obs.events import SCHEMA_VERSION, JsonlWriter, jsonable
from repro.obs.flightrec import record as flightrec_record

#: Directory holding per-worker trace shards, next to the parent trace file:
#: ``/path/run.jsonl`` -> ``/path/run.jsonl.shards/worker-<pid>.jsonl``.
SHARD_DIR_SUFFIX = ".shards"


class NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def record(self, **attrs) -> None:
        pass


NULL_SPAN = NullSpan()


class Span:
    """One live timed region; emitted as a ``span`` record on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "depth", "_ts", "_wall0", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = next(tracer._ids)
        self.parent_id: Optional[int] = None
        self.depth = 0

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        self._ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        flightrec_record(
            "trace.span_open",
            {"name": self.name, "span_id": self.span_id, "depth": self.depth},
            ts=self._ts,
        )
        return self

    def record(self, **attrs) -> None:
        """Attach extra attributes to this span's record."""
        self.attrs.update(attrs)

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        stack = self._tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # defensive: mis-nested exit
            stack.remove(self)
        record = {
            "type": "span",
            "name": self.name,
            "ts": self._ts,
            "wall_s": wall,
            "cpu_s": cpu,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
        }
        if exc_type is not None:
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = jsonable(self.attrs)
        self._tracer._emit(record)
        return False  # never swallow exceptions


class Tracer:
    """Emits span/event records to a JSONL sink when enabled."""

    def __init__(self):
        self.enabled = False
        self._writer: Optional[JsonlWriter] = None
        self._sink_path: Optional[str] = None
        self._ids = itertools.count(1)
        self._local = threading.local()

    # -- lifecycle -----------------------------------------------------------

    def configure(self, sink: Union[str, IO[str]], **meta) -> None:
        """Start tracing into ``sink`` (a path or text file object)."""
        self.close()
        self._writer = JsonlWriter(sink)
        self._sink_path = sink if isinstance(sink, str) else None
        self._ids = itertools.count(1)
        self._writer.write(
            {"type": "meta", "schema": SCHEMA_VERSION, "ts": time.time(),
             **({"attrs": jsonable(meta)} if meta else {})}
        )
        self.enabled = True

    def close(self) -> None:
        """Stop tracing and flush/close the sink (idempotent)."""
        self.enabled = False
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._sink_path = None

    def detach(self) -> None:
        """Disable tracing and *drop* the sink without flushing or closing it.

        For child processes: a forked worker inherits the parent's tracer,
        including its open file object and any bytes the parent had buffered
        at fork time.  ``close()`` would flush that inherited buffer into
        the file a second time, so the child must walk away from the handle
        instead of closing it.  The thread-local span stack is reset too —
        spans open in the parent at fork time do not belong to the child.
        """
        self.enabled = False
        self._writer = None
        self._sink_path = None
        self._local = threading.local()

    @property
    def sink_path(self) -> Optional[str]:
        """Path of the current sink, or None (disabled / file-object sink)."""
        return self._sink_path

    # -- cross-process shards ------------------------------------------------

    def worker_context(self, **attrs) -> Optional[Dict[str, Any]]:
        """Picklable shard context to ship to pool workers.

        Returns None unless tracing into a named file (worker shards need a
        directory to live in).  The context carries the shard directory
        (created here, in the parent), the current span's id/depth so shard
        roots can be re-parented under it at merge time, and any extra
        ``attrs`` to stamp into each shard's meta record.
        """
        if not self.enabled or self._sink_path is None:
            return None
        shard_dir = self._sink_path + SHARD_DIR_SUFFIX
        os.makedirs(shard_dir, exist_ok=True)
        current = self.current_span
        return {
            "shard_dir": shard_dir,
            "parent_span_id": None if current is None else current.span_id,
            "parent_depth": 0 if current is None else current.depth + 1,
            "attrs": jsonable(attrs) if attrs else {},
        }

    def configure_shard(self, context: Dict[str, Any]) -> str:
        """Open this process's shard of an inherited trace (pool workers).

        Call after :meth:`detach`, with the parent's
        :meth:`worker_context`.  The shard file is keyed on the worker's
        pid, its meta record carries the inherited parent span linkage, and
        the shard is closed at interpreter exit so a clean worker shutdown
        always leaves complete lines behind.  Returns the shard path.
        """
        pid = os.getpid()
        path = os.path.join(context["shard_dir"], f"worker-{pid}.jsonl")
        self.detach()
        self._writer = JsonlWriter(path)
        self._sink_path = path
        self._ids = itertools.count(1)
        self._writer.write({
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "ts": time.time(),
            "worker": {
                "pid": pid,
                "parent_span_id": context.get("parent_span_id"),
                "parent_depth": int(context.get("parent_depth", 0)),
            },
            **({"attrs": dict(context["attrs"])} if context.get("attrs") else {}),
        })
        self.enabled = True
        atexit.register(self.close)
        return path

    def allocate_span_id(self) -> int:
        """Draw a fresh span id from this tracer's sequence (merger use)."""
        return next(self._ids)

    def emit(self, record: dict) -> None:
        """Write a pre-built record to the sink while enabled (merger use)."""
        if self.enabled:
            self._emit(record)

    # -- recording -----------------------------------------------------------

    @property
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span(self) -> Optional[Span]:
        stack = self._stack
        return stack[-1] if stack else None

    def span(self, name: str, **attrs) -> Union[Span, NullSpan]:
        """Open a timed region (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a point-in-time observation under the current span."""
        if not self.enabled:
            return
        current = self.current_span
        record = {
            "type": "event",
            "name": name,
            "ts": time.time(),
            "parent_id": current.span_id if current is not None else None,
        }
        if attrs:
            record["attrs"] = jsonable(attrs)
        self._emit(record)

    def _emit(self, record: dict) -> None:
        # Every record that reaches a sink also lands on the black-box
        # flight recorder, so crash bundles keep the final spans/events
        # even when the trace file itself is lost or torn.
        flightrec_record(
            "trace." + str(record.get("type", "record")),
            record, ts=record.get("ts"),
        )
        if self._writer is not None:
            self._writer.write(record)

    def flush(self) -> None:
        if self._writer is not None:
            self._writer.flush()


#: The process-global tracer all instrumentation reports into.
trace = Tracer()


def traced(fn=None, *, name: Optional[str] = None, tracer: Optional[Tracer] = None):
    """Decorator: run the function inside a span named after it.

    Works bare (``@traced``) or parameterized (``@traced(name="precode")``).
    When the tracer is disabled the wrapper adds one attribute test.
    """

    def decorate(f):
        label = name or f.__qualname__
        t = tracer or trace

        @functools.wraps(f)
        def wrapper(*args, **kwargs):
            if not t.enabled:
                return f(*args, **kwargs)
            with t.span(label):
                return f(*args, **kwargs)

        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
