"""Metrics registry: counters, gauges, and reservoir histograms.

Hot paths grab a metric handle once (``metrics.counter("mac.arq.retries")``)
and update it with plain attribute arithmetic — no string lookups, locks or
allocation per update.  Histograms keep a preallocated numpy reservoir so
``observe`` is an indexed store; percentiles are computed lazily when the
registry is rendered.

The module keeps one process-global :class:`MetricsRegistry` (the default
target of the module-level helpers) because the simulators and the PHY stack
are built independently but report into one run.  ``reset()`` zeroes every
registered metric *in place*, so handles cached inside long-lived objects
stay valid across runs.

Everything renders to plain dicts (:meth:`MetricsRegistry.to_dict`) and JSON
(:meth:`MetricsRegistry.write_json`); only stdlib + numpy are used.
"""

from __future__ import annotations

import json
import time
import zlib
from typing import Dict, Optional, Union

import numpy as np

#: Default reservoir capacity of a histogram (samples kept for percentiles).
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing sum (events, seconds of airtime, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins instantaneous value (queue depth, backlog, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def reset(self) -> None:
        self.value = None

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming distribution with a preallocated reservoir.

    The first ``capacity`` observations are stored verbatim; past that,
    classic reservoir sampling keeps a uniform sample of everything seen.
    Exact count / mean / min / max are tracked in running form regardless of
    reservoir state, so only the percentiles are (slightly) approximate on
    overflow.  The replacement RNG is seeded from the metric name, keeping
    runs reproducible.
    """

    __slots__ = ("name", "capacity", "_values", "_stored", "count",
                 "_sum", "_min", "_max", "_rng")

    def __init__(self, name: str, capacity: int = DEFAULT_RESERVOIR):
        if capacity < 1:
            raise ValueError("histogram capacity must be >= 1")
        self.name = name
        self.capacity = int(capacity)
        self._values = np.empty(self.capacity, dtype=float)
        self._stored = 0
        self.count = 0
        self._sum = 0.0
        self._min = np.inf
        self._max = -np.inf
        self._rng = np.random.default_rng(zlib.crc32(name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._stored < self.capacity:
            self._values[self._stored] = value
            self._stored += 1
        else:
            # reservoir sampling: keep each seen value with prob cap/count
            j = int(self._rng.integers(0, self.count))
            if j < self.capacity:
                self._values[j] = value

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else float("nan")

    @property
    def min(self) -> float:
        return self._min if self.count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self.count else float("nan")

    def percentile(self, q: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Percentile(s) of the reservoir sample (q in 0..100)."""
        if self._stored == 0:
            return float("nan") if np.isscalar(q) else np.full(np.shape(q), np.nan)
        out = np.percentile(self._values[: self._stored], q)
        return float(out) if np.isscalar(q) else out

    def reset(self) -> None:
        self._stored = 0
        self.count = 0
        self._sum = 0.0
        self._min = np.inf
        self._max = -np.inf

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"type": "histogram", "count": 0}
        p50, p90, p95, p99 = (float(x) for x in self.percentile([50, 90, 95, 99]))
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": p50,
            "p90": p90,
            "p95": p95,
            "p99": p99,
        }


class Timer:
    """Wall/CPU stopwatch, optionally feeding a histogram.

    The obs-sanctioned replacement for ad-hoc ``time.perf_counter()``
    bookkeeping (lint rule OBS003): measured durations land in telemetry
    instead of evaporating in a local variable.  Use as a context manager
    or via explicit ``start()``/``stop()``; ``stop`` returns the wall
    duration and records it into the attached histogram (if any), and
    ``wall_s``/``cpu_s`` keep the last measured interval.
    """

    __slots__ = ("histogram", "wall_s", "cpu_s", "_wall0", "_cpu0")

    def __init__(self, histogram: Optional[Histogram] = None):
        self.histogram = histogram
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self._wall0: Optional[float] = None
        self._cpu0 = 0.0

    def start(self) -> "Timer":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def stop(self) -> float:
        if self._wall0 is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.wall_s = time.perf_counter() - self._wall0
        self.cpu_s = time.process_time() - self._cpu0
        self._wall0 = None
        if self.histogram is not None:
            self.histogram.observe(self.wall_s)
        return self.wall_s

    __enter__ = start

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> metric store with get-or-create accessors."""

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, *args) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, capacity: int = DEFAULT_RESERVOIR) -> Histogram:
        return self._get(name, Histogram, capacity)

    def timer(self, name: Optional[str] = None) -> Timer:
        """A fresh :class:`Timer`, observing into ``histogram(name)`` if named."""
        return Timer(self.histogram(name) if name else None)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every metric in place (cached handles stay valid)."""
        for metric in self._metrics.values():
            metric.reset()

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str, indent: int = 2) -> None:
        with open(path, "w") as f:
            f.write(self.to_json(indent=indent))
            f.write("\n")


#: The process-global registry every component reports into by default.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, capacity: int = DEFAULT_RESERVOIR) -> Histogram:
    return _REGISTRY.histogram(name, capacity)


def timer(name: Optional[str] = None) -> Timer:
    return _REGISTRY.timer(name)


def reset() -> None:
    _REGISTRY.reset()


def to_dict() -> dict:
    return _REGISTRY.to_dict()


def write_json(path: str, indent: int = 2) -> None:
    _REGISTRY.write_json(path, indent=indent)
