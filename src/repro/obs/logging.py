"""Logging policy for the toolkit: diagnostics on stderr, results on stdout.

Every module logs through ``get_logger(__name__)`` (all under the ``repro``
hierarchy); :func:`setup_logging` attaches a single stderr handler at a
level mapped from the CLI's ``-v``/``-q`` flags.  Result tables keep going
to stdout via plain ``print`` — piping ``python -m repro figure 9`` into a
file captures only the table, never log noise.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

#: Root of the package's logger hierarchy.
LOGGER_NAME = "repro"

_FORMAT = "%(levelname)s %(name)s: %(message)s"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Pass ``__name__`` from package modules (already rooted at ``repro``);
    any other name is nested under it.
    """
    if name is None:
        return logging.getLogger(LOGGER_NAME)
    if name == LOGGER_NAME or name.startswith(LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{LOGGER_NAME}.{name}")


def verbosity_to_level(verbosity: int) -> int:
    """Map ``-q``/``-v`` counts to a logging level.

    -1 (quiet) -> ERROR, 0 -> WARNING, 1 -> INFO, >=2 -> DEBUG.
    """
    if verbosity <= -1:
        return logging.ERROR
    if verbosity == 0:
        return logging.WARNING
    if verbosity == 1:
        return logging.INFO
    return logging.DEBUG


def setup_logging(verbosity: int = 0, stream=None) -> logging.Logger:
    """Configure the ``repro`` logger once; safe to call repeatedly.

    Args:
        verbosity: Net ``-v`` minus ``-q`` count from the CLI.
        stream: Output stream (default ``sys.stderr``; stdout is reserved
            for result tables).
    """
    logger = logging.getLogger(LOGGER_NAME)
    logger.setLevel(verbosity_to_level(verbosity))
    logger.propagate = False
    # replace any handler a previous setup_logging call attached
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(_FORMAT))
    handler._repro_obs = True
    logger.addHandler(handler)
    return logger
