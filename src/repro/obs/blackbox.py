"""Crash-forensics bundles: ``runs/crash-<runid>/`` post-mortem snapshots.

A long sweep that dies — a ``SweepError``, an unhandled exception, a
SIGTERM from the scheduler, a watchdog kill, a critical alert — used to
leave nothing behind but whatever happened to be on stderr.  This module
turns each of those moments into a *bundle*: one directory under the
runs dir holding everything needed to reconstruct the final seconds:

========================  ==================================================
``bundle.json``           Manifest: reason, run id, error, provenance
                          (git sha / config hash / platform), file list.
``flightrec.json``        The flight-recorder ring dump
                          (:mod:`repro.obs.flightrec`).
``progress.json``         The last ``runtime.progress`` tick the recorder
                          saw (null when the run never swept).
``stacks.txt``            ``faulthandler`` dump of every thread at bundle
                          time — for a watchdog stall this includes the
                          hung kernel's stack.
``environment.json``      ``REPRO_*`` environment + platform snapshot.
========================  ==================================================

Bundles are written *best-effort* (never raise into the failing path)
and from any thread — the watchdog monitor writes one while the main
thread is still hung, which is the whole black-box point.  Each bundle
is also queued on a process-global list; the CLI drains that list into
the run's ledger alarms so ``repro obs runs show`` links to the bundle.

``repro obs blackbox list/show`` inspect bundles after the fact.
"""

from __future__ import annotations

import faulthandler
import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs import provenance
from repro.obs.events import jsonable
from repro.obs.flightrec import get_recorder
from repro.obs.ledger import default_runs_dir, new_run_id
from repro.obs.logging import get_logger

logger = get_logger("obs.blackbox")

#: Version stamped into each bundle manifest.
BUNDLE_SCHEMA = 1

#: Bundle directory prefix under the runs dir.
BUNDLE_PREFIX = "crash-"

#: The triggers a bundle records (free-form, but these are the built-ins).
REASONS = (
    "sweep_error",
    "unhandled_exception",
    "signal",
    "watchdog_stall",
    "critical_alert",
)


@dataclass
class RunBlackboxContext:
    """Identity of the current run, shared by every bundle trigger."""

    run_id: Optional[str] = None
    command: Optional[str] = None
    argv: List[str] = field(default_factory=list)
    config: Dict[str, Any] = field(default_factory=dict)
    runs_dir: Optional[str] = None


_CONTEXT = RunBlackboxContext()
_BUNDLES: List[Dict[str, Any]] = []
_LOCK = threading.Lock()


def set_run_context(
    run_id: Optional[str] = None,
    command: Optional[str] = None,
    argv: Optional[List[str]] = None,
    config: Optional[Dict[str, Any]] = None,
    runs_dir: Union[str, Path, None] = None,
) -> None:
    """Stamp the current run's identity (CLI entry calls this early).

    Bundles written later — from any layer, any thread — link back to
    the same run id the ledger record will carry.
    """
    if run_id is not None:
        _CONTEXT.run_id = run_id
    if command is not None:
        _CONTEXT.command = command
    if argv is not None:
        _CONTEXT.argv = list(argv)
    if config is not None:
        _CONTEXT.config = dict(config)
    if runs_dir is not None:
        # e.g. --ledger DIR: bundles written by layers that never see the
        # CLI args (the watchdog monitor thread) land next to the ledger
        _CONTEXT.runs_dir = str(runs_dir)


def clear_run_context() -> None:
    """Reset the run context (tests; end of a CLI invocation)."""
    global _CONTEXT
    _CONTEXT = RunBlackboxContext()


def current_run_id() -> Optional[str]:
    return _CONTEXT.run_id


def drain_bundles() -> List[Dict[str, Any]]:
    """Ledger-alarm dicts for bundles written since the last drain."""
    with _LOCK:
        out = list(_BUNDLES)
        _BUNDLES.clear()
    return out


def pending_bundles() -> int:
    """Bundles written since the last drain, without draining them."""
    with _LOCK:
        return len(_BUNDLES)


def _environment_snapshot() -> Dict[str, Any]:
    return {
        "env": {k: v for k, v in sorted(os.environ.items())
                if k.startswith("REPRO_")},
        "cwd": os.getcwd(),
        "argv": list(sys.argv),
        "pid": os.getpid(),
    }


def _bundle_dir(runs_dir: Path, run_id: str) -> Path:
    """A fresh bundle directory: ``crash-<runid>``, suffixed on collision."""
    base = runs_dir / f"{BUNDLE_PREFIX}{run_id}"
    if not base.exists():
        return base
    n = 2
    while (runs_dir / f"{BUNDLE_PREFIX}{run_id}-{n}").exists():
        n += 1
    return runs_dir / f"{BUNDLE_PREFIX}{run_id}-{n}"


def _write_json(path: Path, obj: Any) -> None:
    with open(path, "w") as f:
        json.dump(jsonable(obj), f, indent=2, sort_keys=True)
        f.write("\n")


def write_crash_bundle(
    reason: str,
    error: Optional[BaseException] = None,
    runs_dir: Union[str, Path, None] = None,
    detail: Optional[Dict[str, Any]] = None,
) -> Optional[Path]:
    """Write one ``runs/crash-<runid>/`` bundle; returns its path.

    Best-effort: any failure is logged and swallowed — forensics must
    never make the crash it documents worse.  Safe from any thread.
    """
    try:
        return _write_crash_bundle(reason, error, runs_dir, detail)
    except Exception:
        logger.exception("could not write crash bundle (reason=%s)", reason)
        return None


def _write_crash_bundle(
    reason: str,
    error: Optional[BaseException],
    runs_dir: Union[str, Path, None],
    detail: Optional[Dict[str, Any]],
) -> Path:
    now = time.time()
    run_id = _CONTEXT.run_id or new_run_id(now)
    if runs_dir is None:
        runs_dir = _CONTEXT.runs_dir
    base = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    bundle = _bundle_dir(base, run_id)
    bundle.mkdir(parents=True, exist_ok=True)

    recorder = get_recorder()
    recorder.dump_json(bundle / "flightrec.json")
    progress = recorder.last("runtime.progress")
    _write_json(bundle / "progress.json", progress)
    _write_json(bundle / "environment.json", _environment_snapshot())
    with open(bundle / "stacks.txt", "w") as f:
        f.write(f"# all-thread tracebacks at {now:.3f} (reason={reason})\n")
        f.flush()
        faulthandler.dump_traceback(file=f, all_threads=True)

    manifest: Dict[str, Any] = {
        "schema": BUNDLE_SCHEMA,
        "bundle_id": bundle.name,
        "run_id": run_id,
        "ts": now,
        "reason": reason,
        "command": _CONTEXT.command,
        "argv": list(_CONTEXT.argv),
        "pid": os.getpid(),
        "error": None if error is None else {
            "type": type(error).__name__,
            "message": str(error),
        },
        "detail": detail or {},
        "provenance": provenance.collect(_CONTEXT.config),
        "files": sorted(p.name for p in bundle.iterdir()) + ["bundle.json"],
    }
    _write_json(bundle / "bundle.json", manifest)

    with _LOCK:
        _BUNDLES.append({
            "kind": "crash_bundle",
            "rule": None,
            "reason": reason,
            "bundle_id": bundle.name,
            "path": str(bundle),
            "severity": "critical",
        })
    logger.error("crash bundle written to %s (reason=%s)", bundle, reason)
    return bundle


# ---------------------------------------------------------------------------
# Signal hooks (SIGTERM / SIGINT write a bundle before the default action)
# ---------------------------------------------------------------------------


class signal_guard:
    """Context manager: bundle-on-SIGTERM/SIGINT for the guarded region.

    On entry, installs handlers that write a ``signal`` bundle and then
    re-raise through the previous handler (so ctrl-c still interrupts
    and SIGTERM still terminates).  On exit, restores the previous
    handlers — required for in-process CLI tests.  Outside the main
    thread (where ``signal.signal`` raises) the guard is a no-op.
    """

    def __init__(self, runs_dir: Union[str, Path, None] = None):
        self.runs_dir = runs_dir
        self._previous: Dict[int, Any] = {}

    def __enter__(self) -> "signal_guard":
        import signal as _signal

        def handler(signum: int, frame: Any) -> None:
            name = _signal.Signals(signum).name
            write_crash_bundle(
                "signal", runs_dir=self.runs_dir, detail={"signal": name},
            )
            previous = self._previous.get(signum)
            _signal.signal(signum, previous or _signal.SIG_DFL)
            os.kill(os.getpid(), signum)

        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                self._previous[signum] = _signal.signal(signum, handler)
            except ValueError:  # not the main thread: leave signals alone
                self._previous.pop(signum, None)
                break
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        import signal as _signal

        for signum, previous in self._previous.items():
            try:
                _signal.signal(signum, previous)
            except (ValueError, TypeError):
                pass  # repro: noqa[OBS005] — restoring outside the main thread
        self._previous = {}


# ---------------------------------------------------------------------------
# Inspection: ``repro obs blackbox list/show``
# ---------------------------------------------------------------------------


def list_bundles(runs_dir: Union[str, Path, None] = None) -> List[Dict[str, Any]]:
    """Manifests of every bundle under the runs dir, oldest first."""
    base = Path(runs_dir) if runs_dir is not None else default_runs_dir()
    if not base.is_dir():
        return []
    out = []
    for path in sorted(base.iterdir()):
        if not (path.is_dir() and path.name.startswith(BUNDLE_PREFIX)):
            continue
        manifest_path = path / "bundle.json"
        try:
            with open(manifest_path) as f:
                manifest = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("skipping unreadable bundle %s: %s", path, exc)
            continue
        manifest["path"] = str(path)
        out.append(manifest)
    out.sort(key=lambda m: m.get("ts") or 0.0)
    return out


def load_bundle(
    token: str, runs_dir: Union[str, Path, None] = None
) -> Optional[Dict[str, Any]]:
    """One bundle's manifest + parsed contents, by id/run-id/'latest'.

    ``token`` matches the bundle directory name, its run id, an
    unambiguous prefix of either, or ``latest``.  Returns None when
    nothing matches (or the match is ambiguous, which is logged).
    """
    bundles = list_bundles(runs_dir)
    if not bundles:
        return None
    if token == "latest":
        matches = [bundles[-1]]
    else:
        matches = [
            m for m in bundles
            if token in (m.get("bundle_id"), m.get("run_id"))
        ] or [
            m for m in bundles
            if str(m.get("bundle_id", "")).startswith(token)
            or str(m.get("run_id", "")).startswith(token)
        ]
    if not matches:
        return None
    if len(matches) > 1:
        logger.error(
            "bundle token %r is ambiguous: %s", token,
            ", ".join(str(m.get("bundle_id")) for m in matches),
        )
        return None
    manifest = dict(matches[-1])
    bundle = Path(manifest["path"])
    for name in ("flightrec.json", "progress.json", "environment.json"):
        path = bundle / name
        if path.exists():
            with open(path) as f:
                manifest[name.rsplit(".", 1)[0]] = json.load(f)
    stacks = bundle / "stacks.txt"
    if stacks.exists():
        manifest["stacks"] = stacks.read_text()
    return manifest


def format_bundle_list(bundles: List[Dict[str, Any]]) -> str:
    """The ``repro obs blackbox list`` table."""
    if not bundles:
        return "no crash bundles"
    lines = [
        f"{'bundle':<32} {'when (UTC)':<16} {'reason':<20} "
        f"{'command':<10} error"
    ]
    for m in bundles:
        when = time.strftime("%m-%d %H:%M:%S", time.gmtime(m.get("ts") or 0))
        err = m.get("error") or {}
        err_cell = f"{err.get('type')}: {err.get('message')}" if err else "-"
        if len(err_cell) > 40:
            err_cell = err_cell[:39] + "…"
        lines.append(
            f"{m.get('bundle_id', '?'):<32} {when:<16} "
            f"{m.get('reason', '?'):<20} {str(m.get('command') or '-'):<10} "
            f"{err_cell}"
        )
    return "\n".join(lines)


def format_bundle_show(bundle: Dict[str, Any], records: int = 10) -> str:
    """The ``repro obs blackbox show`` rendering."""
    lines = [f"bundle {bundle.get('bundle_id')} ({bundle.get('path')})"]
    for key in ("run_id", "reason", "ts", "command", "pid"):
        lines.append(f"  {key}: {bundle.get(key)}")
    err = bundle.get("error")
    if err:
        lines.append(f"  error: {err.get('type')}: {err.get('message')}")
    detail = bundle.get("detail") or {}
    for key, value in sorted(detail.items()):
        lines.append(f"  detail.{key}: {value}")
    prov = bundle.get("provenance") or {}
    lines.append(
        f"  provenance: sha={prov.get('git_sha')} "
        f"config_hash={prov.get('config_hash')}"
    )
    progress = bundle.get("progress")
    if progress:
        data = progress.get("data", progress)
        lines.append(
            f"  last progress: {data.get('done_chunks')}/"
            f"{data.get('total_chunks')} chunks, "
            f"{data.get('done_trials')}/{data.get('total_trials')} trials, "
            f"retries {data.get('retries')}"
        )
    rec = bundle.get("flightrec") or {}
    tail = (rec.get("records") or [])[-max(records, 0):]
    lines.append(
        f"  flight recorder: {rec.get('total', 0)} recorded, "
        f"{rec.get('dropped', 0)} evicted, showing last {len(tail)}"
    )
    for r in tail:
        when = time.strftime("%H:%M:%S", time.gmtime(r.get("ts") or 0))
        data = r.get("data") or {}
        keys = ", ".join(
            f"{k}={data[k]}" for k in sorted(data)[:4]
        )
        lines.append(f"    {when} {r.get('kind')}  {keys}")
    if bundle.get("stacks"):
        n_threads = bundle["stacks"].count("Thread 0x") + (
            1 if "Current thread" in bundle["stacks"] else 0
        )
        lines.append(f"  stacks.txt: {n_threads} thread(s) captured")
    return "\n".join(lines)
