"""Performance-attribution profiler over (merged) JSONL traces.

Answers *where the wall-clock went* for a parallel sweep.  The engine
records one ``runtime.chunk`` event per completed work item (parented to
its ``runtime.sweep`` span), carrying the dispatch-overhead envelope:
submit/receive/done timestamps, worker wall/CPU compute, and task/result
serialization bytes and seconds.  :func:`attribute_chunks` folds those into
a per-worker decomposition

    wall = compute + dispatch + serialization + idle

that sums to the sweep's measured wall time *by construction* (idle is the
clamped remainder of the worker's window):

``compute``
    Kernel time inside :func:`repro.runtime.engine.run_chunk`.
``serialization``
    Parent-side task pickling plus worker-side result pickling.
``dispatch``
    Worker startup (sweep start to the worker's first chunk arrival) plus
    per-chunk envelope overhead (argument unpickling, accounting, IPC
    framing — worker busy time not explained by compute or result
    serialization).
``idle``
    The rest of the worker's window: waiting for work, straggler tail.

Queue wait (submit to worker receipt) overlaps other chunks' compute on a
busy pool, so it is reported alongside — not inside — the decomposition.

:func:`profile_trace` runs the attribution for every sweep in a trace and
bundles the ordinary hot-span summary; :func:`folded_stacks` renders the
span tree as folded flamegraph lines (``a;b;c <self-time-us>``), ready for
``flamegraph.pl`` or any compatible viewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.obs.events import read_events
from repro.obs.summary import TraceSummary, summarize

#: Span name the engine wraps every sweep in.
SWEEP_SPAN = "runtime.sweep"

#: Event name carrying one chunk's dispatch-overhead envelope.
CHUNK_EVENT = "runtime.chunk"

#: The four components every attribution decomposes wall time into.
COMPONENTS = ("compute_s", "dispatch_s", "serialization_s", "idle_s")


@dataclass
class WorkerBreakdown:
    """One worker's share of a sweep's wall-clock window."""

    worker: str
    wall_s: float
    chunks: int = 0
    trials: int = 0
    compute_s: float = 0.0
    cpu_s: float = 0.0
    dispatch_s: float = 0.0
    serialization_s: float = 0.0
    idle_s: float = 0.0
    queue_wait_s: float = 0.0
    mem_peak_kb: Optional[float] = None

    @property
    def components_s(self) -> float:
        """Sum of the four attribution components (should ~equal wall_s)."""
        return self.compute_s + self.dispatch_s + self.serialization_s + self.idle_s

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "worker": self.worker,
            "chunks": self.chunks,
            "trials": self.trials,
            "compute_s": self.compute_s,
            "cpu_s": self.cpu_s,
            "dispatch_s": self.dispatch_s,
            "serialization_s": self.serialization_s,
            "idle_s": self.idle_s,
            "queue_wait_s": self.queue_wait_s,
        }
        if self.mem_peak_kb is not None:
            out["mem_peak_kb"] = self.mem_peak_kb
        return out


@dataclass
class SweepAttribution:
    """Top-down wall-time attribution of one sweep run."""

    sweep: str
    wall_s: float
    workers: int
    per_worker: List[WorkerBreakdown] = field(default_factory=list)
    modes: Dict[str, int] = field(default_factory=dict)

    def _total(self, attr: str) -> float:
        return float(sum(getattr(w, attr) for w in self.per_worker))

    @property
    def chunks(self) -> int:
        return sum(w.chunks for w in self.per_worker)

    @property
    def trials(self) -> int:
        return sum(w.trials for w in self.per_worker)

    @property
    def capacity_s(self) -> float:
        """Total worker-seconds available: ``workers * wall_s``."""
        return self.workers * self.wall_s

    @property
    def utilization(self) -> float:
        """Fraction of pool capacity spent in kernel compute."""
        return self._total("compute_s") / self.capacity_s if self.capacity_s else 0.0

    @property
    def dispatch_frac(self) -> float:
        return self._total("dispatch_s") / self.capacity_s if self.capacity_s else 0.0

    @property
    def serialization_frac(self) -> float:
        return (
            self._total("serialization_s") / self.capacity_s
            if self.capacity_s else 0.0
        )

    def to_dict(self) -> Dict[str, Any]:
        """The ``overhead`` breakdown stamped into results and BENCH entries."""
        return {
            "sweep": self.sweep,
            "wall_s": self.wall_s,
            "workers": self.workers,
            "chunks": self.chunks,
            "trials": self.trials,
            "modes": dict(self.modes),
            "compute_s": self._total("compute_s"),
            "cpu_s": self._total("cpu_s"),
            "dispatch_s": self._total("dispatch_s"),
            "serialization_s": self._total("serialization_s"),
            "idle_s": self._total("idle_s"),
            "queue_wait_s": self._total("queue_wait_s"),
            "utilization": self.utilization,
            "dispatch_frac": self.dispatch_frac,
            "serialization_frac": self.serialization_frac,
            "per_worker": [w.to_dict() for w in self.per_worker],
        }


def attribute_chunks(
    chunks: Sequence[Dict[str, Any]],
    wall_s: float,
    workers: int,
    start_ts: float,
    sweep: str = "?",
) -> SweepAttribution:
    """Decompose a sweep's wall time from its chunk envelope records.

    ``chunks`` are dicts shaped like the engine's ``runtime.chunk`` event
    attrs.  Each worker's window is the full sweep wall; compute, dispatch
    and serialization are summed from its chunks and idle is the clamped
    remainder, so per-worker components always reassemble the wall.
    """
    attribution = SweepAttribution(
        sweep=sweep, wall_s=float(wall_s), workers=int(workers)
    )
    groups: Dict[str, List[Dict[str, Any]]] = {}
    for rec in chunks:
        worker = str(rec.get("worker", "parent"))
        groups.setdefault(worker, []).append(rec)
        mode = str(rec.get("mode", "pool"))
        attribution.modes[mode] = attribution.modes.get(mode, 0) + 1

    for worker in sorted(groups):
        recs = groups[worker]
        compute = sum(float(r.get("wall_s", 0.0)) for r in recs)
        cpu = sum(float(r.get("cpu_s", 0.0)) for r in recs)
        ser_result = sum(float(r.get("ser_result_s", 0.0)) for r in recs)
        ser = ser_result + sum(float(r.get("ser_task_s", 0.0)) for r in recs)
        busy = sum(
            max(float(r.get("done_ts", 0.0)) - float(r.get("recv_ts", 0.0)), 0.0)
            for r in recs
        )
        envelope = max(busy - compute - ser_result, 0.0)
        # Startup latency only applies to pool workers: the parent runs
        # serial/retry chunks interleaved with its own bookkeeping, so its
        # first chunk's arrival time says nothing about spawn cost.
        if all(r.get("mode") == "pool" for r in recs):
            startup = max(
                min(float(r.get("recv_ts", start_ts)) for r in recs) - start_ts,
                0.0,
            )
        else:
            startup = 0.0
        dispatch = envelope + startup
        idle = max(float(wall_s) - compute - ser - dispatch, 0.0)
        peaks = [
            float(r["mem_peak_kb"]) for r in recs
            if r.get("mem_peak_kb") is not None
        ]
        attribution.per_worker.append(WorkerBreakdown(
            worker=worker,
            wall_s=float(wall_s),
            chunks=len(recs),
            trials=sum(int(r.get("trials", 0)) for r in recs),
            compute_s=compute,
            cpu_s=cpu,
            dispatch_s=dispatch,
            serialization_s=ser,
            idle_s=idle,
            queue_wait_s=sum(float(r.get("queue_wait_s", 0.0)) for r in recs),
            mem_peak_kb=max(peaks) if peaks else None,
        ))
    return attribution


@dataclass
class TraceProfile:
    """Everything the profiler extracts from one trace file."""

    records: List[Dict[str, Any]]
    attributions: List[SweepAttribution]
    summary: TraceSummary


def profile_trace(source: Union[str, Iterable[Dict[str, Any]]]) -> TraceProfile:
    """Profile a trace: per-sweep attribution plus the hot-span summary."""
    if isinstance(source, str):
        records = read_events(source)
    else:
        records = list(source)
    chunk_events: Dict[Any, List[Dict[str, Any]]] = {}
    for rec in records:
        if rec.get("type") == "event" and rec.get("name") == CHUNK_EVENT:
            chunk_events.setdefault(rec.get("parent_id"), []).append(
                rec.get("attrs") or {}
            )
    attributions: List[SweepAttribution] = []
    for rec in records:
        if rec.get("type") != "span" or rec.get("name") != SWEEP_SPAN:
            continue
        chunks = chunk_events.get(rec.get("span_id"), [])
        attrs = rec.get("attrs") or {}
        if not chunks:
            # A sweep span without chunk envelopes is an instrumentation
            # regression — unless the span itself says every chunk was
            # loaded from the checkpoint (a fully-resumed run legitimately
            # dispatches nothing).  Emit an empty attribution for the
            # latter so `repro obs profile` renders it instead of exiting 1.
            resumed = attrs.get("resumed")
            if resumed is not None and int(resumed) == int(attrs.get("chunks", -1)):
                attributions.append(attribute_chunks(
                    [],
                    wall_s=float(rec.get("wall_s", 0.0)),
                    workers=int(attrs.get("workers", 1)),
                    start_ts=float(rec.get("ts", 0.0)),
                    sweep=str(attrs.get("sweep", "?")),
                ))
            continue
        # The span record's ts is its *entry* time; wall_s its duration.
        attributions.append(attribute_chunks(
            chunks,
            wall_s=float(rec.get("wall_s", 0.0)),
            workers=int(attrs.get("workers", 1)),
            start_ts=float(rec.get("ts", 0.0)),
            sweep=str(attrs.get("sweep", "?")),
        ))
    return TraceProfile(
        records=records,
        attributions=attributions,
        summary=summarize(records),
    )


def folded_stacks(
    records: Iterable[Dict[str, Any]], scale: float = 1e6
) -> List[str]:
    """Render span self-times as folded flamegraph lines.

    One line per distinct root-to-span path, ``root;child;leaf <value>``,
    where the value is the path's aggregate *self* time in microseconds
    (integer, as flamegraph tooling expects).  Works on merged traces: the
    shard merger keeps ids unique and parent links intact, so worker spans
    fold under the sweep span that launched them.
    """
    spans: Dict[Any, Dict[str, Any]] = {}
    order: List[Dict[str, Any]] = []
    child_wall: Dict[Any, float] = {}
    for rec in records:
        if rec.get("type") != "span":
            continue
        spans[rec.get("span_id")] = rec
        order.append(rec)
        parent = rec.get("parent_id")
        if parent is not None:
            child_wall[parent] = (
                child_wall.get(parent, 0.0) + float(rec.get("wall_s", 0.0))
            )
    agg: Dict[str, float] = {}
    for rec in order:
        self_s = max(
            float(rec.get("wall_s", 0.0))
            - child_wall.get(rec.get("span_id"), 0.0),
            0.0,
        )
        parts = [str(rec.get("name", "?"))]
        parent_id = rec.get("parent_id")
        hops = 0
        while parent_id is not None and parent_id in spans and hops < 512:
            parent = spans[parent_id]
            parts.append(str(parent.get("name", "?")))
            parent_id = parent.get("parent_id")
            hops += 1
        path = ";".join(reversed(parts))
        agg[path] = agg.get(path, 0.0) + self_s
    return [
        f"{path} {int(round(value * scale))}" for path, value in sorted(agg.items())
    ]


def _fmt_component(seconds: float, wall: float) -> str:
    pct = 100.0 * seconds / wall if wall > 0 else 0.0
    return f"{seconds:9.3f}s {pct:4.0f}%"


def format_attribution(attribution: SweepAttribution) -> str:
    """Render one sweep's attribution as an aligned text table."""
    a = attribution
    modes = ", ".join(f"{k} {v}" for k, v in sorted(a.modes.items())) or "resumed"
    lines = [
        f"sweep {a.sweep!r}: wall {a.wall_s:.3f}s, workers {a.workers}, "
        f"{a.chunks} chunks ({modes}), {a.trials} trials",
    ]
    has_mem = any(w.mem_peak_kb is not None for w in a.per_worker)
    header = (
        f"  {'worker':<12} {'chunks':>6} {'trials':>6} "
        f"{'compute':>15} {'dispatch':>15} {'serializ.':>15} {'idle':>15}"
    )
    if has_mem:
        header += f" {'mem peak':>10}"
    lines.append(header)
    for w in a.per_worker:
        row = (
            f"  {w.worker:<12} {w.chunks:>6} {w.trials:>6} "
            f"{_fmt_component(w.compute_s, w.wall_s)} "
            f"{_fmt_component(w.dispatch_s, w.wall_s)} "
            f"{_fmt_component(w.serialization_s, w.wall_s)} "
            f"{_fmt_component(w.idle_s, w.wall_s)}"
        )
        if has_mem:
            mem = f"{w.mem_peak_kb / 1024:.1f} MB" if w.mem_peak_kb else "-"
            row += f" {mem:>10}"
        lines.append(row)
    lines.append(
        f"  pool capacity {a.capacity_s:.3f}s: utilization "
        f"{100 * a.utilization:.0f}%, dispatch {100 * a.dispatch_frac:.1f}%, "
        f"serialization {100 * a.serialization_frac:.1f}%"
    )
    return "\n".join(lines)


def format_profile(profile: TraceProfile, top_k: int = 0) -> str:
    """Render every sweep attribution (plus, optionally, the span table)."""
    from repro.obs.summary import format_table

    blocks = [format_attribution(a) for a in profile.attributions]
    if not blocks:
        blocks.append("no runtime.chunk dispatch records in trace")
    if top_k > 0:
        blocks.append(format_table(profile.summary, top_k=top_k))
    return "\n\n".join(blocks)
