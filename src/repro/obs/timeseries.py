"""Bounded in-memory time series: the live layer under scrape and alerting.

The metrics registry (:mod:`repro.obs.metrics`) answers "what is the state
of this run *now*" — one value per counter, one reservoir per histogram.
That is the right shape for an exit snapshot but useless for watching a
run evolve: a phase-error histogram that absorbed a sync fault five
minutes ago looks almost identical to a healthy one, and a stalled worker
pool still shows the same totals.

:class:`TimeSeriesStore` keeps *history*: per-series ring buffers of
``(timestamp, value)`` points with a bounded memory footprint.  Producers
(the sweep engine's chunk envelopes, ``SweepProgress`` renders, the
fastsim/MAC sync-error draws) append incrementally while the run executes;
consumers (the alert engine in :mod:`repro.obs.alerts`, the HTTP endpoint
in :mod:`repro.obs.serve`) read windowed rollups — min/max/mean/p50/p95
over the last *N* seconds — and bucketed downsamples for sparklines.

Design constraints, in order:

* **Cheap appends.**  ``Series.record`` is a lock, two indexed numpy
  stores and a counter bump — safe on per-packet paths.
* **Bounded memory.**  Rings hold :data:`DEFAULT_CAPACITY` points; old
  points are overwritten, never reallocated.
* **Handles stay valid.**  Like the metrics registry, ``reset()`` clears
  series *in place* so producers that cached a handle keep publishing.

One process-global store (:func:`get_store`) mirrors the process-global
metrics registry: independent subsystems report into one run.
"""

from __future__ import annotations

import fnmatch
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.flightrec import record as flightrec_record
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Default ring capacity (points retained per series).
DEFAULT_CAPACITY = 1024

#: Rollup statistics rendered by :meth:`Series.rollup`.
ROLLUP_STATS = ("count", "first_ts", "last_ts", "last", "min", "max",
                "mean", "p50", "p95")


class Series:
    """One named ring buffer of ``(timestamp, value)`` points.

    Appends past ``capacity`` overwrite the oldest point; ``total``
    counts every point ever recorded so consumers can detect loss.
    All methods are thread-safe (producers append from the engine /
    simulator threads while the HTTP server reads).
    """

    __slots__ = ("name", "capacity", "total", "_ts", "_values", "_n",
                 "_head", "_lock")

    def __init__(self, name: str, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("series capacity must be >= 1")
        self.name = name
        self.capacity = int(capacity)
        self.total = 0
        self._ts = np.empty(self.capacity, dtype=float)
        self._values = np.empty(self.capacity, dtype=float)
        self._n = 0
        self._head = 0  # next write slot
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._n

    def record(self, value: float, ts: Optional[float] = None) -> None:
        """Append one point (wall-clock ``time.time()`` unless given)."""
        if ts is None:
            ts = time.time()
        with self._lock:
            self._ts[self._head] = ts
            self._values[self._head] = float(value)
            self._head = (self._head + 1) % self.capacity
            if self._n < self.capacity:
                self._n += 1
            self.total += 1

    def _ordered(self) -> Tuple[np.ndarray, np.ndarray]:
        """Copies of (ts, values) oldest-first.  Caller holds the lock."""
        idx = (self._head - self._n + np.arange(self._n)) % self.capacity
        return self._ts[idx].copy(), self._values[idx].copy()

    def points(self, since: Optional[float] = None) -> List[Tuple[float, float]]:
        """``(ts, value)`` pairs oldest-first, optionally from ``since``."""
        with self._lock:
            ts, values = self._ordered()
        if since is not None:
            keep = ts >= since
            ts, values = ts[keep], values[keep]
        return [(float(t), float(v)) for t, v in zip(ts, values)]

    def rollup(self, since: Optional[float] = None) -> dict:
        """Window statistics: :data:`ROLLUP_STATS` (``{"count": 0}`` when empty)."""
        with self._lock:
            ts, values = self._ordered()
        if since is not None:
            keep = ts >= since
            ts, values = ts[keep], values[keep]
        if ts.size == 0:
            return {"count": 0}
        p50, p95 = (float(x) for x in np.percentile(values, [50, 95]))
        return {
            "count": int(ts.size),
            "first_ts": float(ts[0]),
            "last_ts": float(ts[-1]),
            "last": float(values[-1]),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "p50": p50,
            "p95": p95,
        }

    def downsample(
        self, buckets: int, since: Optional[float] = None
    ) -> List[dict]:
        """Equal-width time buckets over the (windowed) points.

        Each non-empty bucket renders ``{"ts", "count", "min", "max",
        "mean"}`` with ``ts`` at the bucket centre — the shape sparkline
        and dashboard consumers want.  Empty buckets are omitted.
        """
        if buckets < 1:
            raise ValueError("buckets must be >= 1")
        with self._lock:
            ts, values = self._ordered()
        if since is not None:
            keep = ts >= since
            ts, values = ts[keep], values[keep]
        if ts.size == 0:
            return []
        t0, t1 = float(ts[0]), float(ts[-1])
        if t1 <= t0 or buckets == 1:
            return [{
                "ts": (t0 + t1) / 2.0, "count": int(ts.size),
                "min": float(values.min()), "max": float(values.max()),
                "mean": float(values.mean()),
            }]
        width = (t1 - t0) / buckets
        which = np.minimum(((ts - t0) / width).astype(int), buckets - 1)
        out = []
        for b in range(buckets):
            sel = which == b
            if not sel.any():
                continue
            vs = values[sel]
            out.append({
                "ts": t0 + (b + 0.5) * width,
                "count": int(sel.sum()),
                "min": float(vs.min()),
                "max": float(vs.max()),
                "mean": float(vs.mean()),
            })
        return out

    def reset(self) -> None:
        """Drop all points in place (the handle stays valid)."""
        with self._lock:
            self._n = 0
            self._head = 0
            self.total = 0


class TimeSeriesStore:
    """Name -> :class:`Series` store with get-or-create accessors."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = int(capacity)
        self._series: Dict[str, Series] = {}
        self._lock = threading.Lock()

    def series(self, name: str, capacity: Optional[int] = None) -> Series:
        """Get-or-create the named series (capacity applies on create)."""
        s = self._series.get(name)
        if s is None:
            with self._lock:
                s = self._series.get(name)
                if s is None:
                    s = Series(name, capacity or self.capacity)
                    self._series[name] = s
        return s

    def record(self, name: str, value: float, ts: Optional[float] = None) -> None:
        # Store-level samples also feed the flight recorder (the hot-path
        # ``Series.record`` handle calls used inside kernels do not).
        flightrec_record("series.sample", {"name": name, "value": value}, ts=ts)
        self.series(name).record(value, ts=ts)

    def get(self, name: str) -> Optional[Series]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    def reset(self) -> None:
        for s in self._series.values():
            s.reset()

    def sample_registry(
        self, registry: MetricsRegistry, ts: Optional[float] = None
    ) -> None:
        """Snapshot registry metrics into the store as one sample each.

        Called periodically by the serve-side evaluator thread so that
        *every* registered metric grows a history, not only the hot paths
        that publish points directly.  Counters and gauges record their
        current value under their own name; histograms record derived
        ``<name>.p50`` / ``<name>.p95`` / ``<name>.mean`` sub-series
        (their raw draws, when a producer publishes them, keep the bare
        name).
        """
        if ts is None:
            ts = time.time()
        for name in registry.names():
            metric = registry.get(name)
            if isinstance(metric, Counter):
                self.record(name, metric.value, ts=ts)
            elif isinstance(metric, Gauge):
                if metric.value is not None:
                    self.record(name, metric.value, ts=ts)
            elif isinstance(metric, Histogram):
                if metric.count:
                    p50, p95 = (float(x) for x in metric.percentile([50, 95]))
                    self.record(f"{name}.p50", p50, ts=ts)
                    self.record(f"{name}.p95", p95, ts=ts)
                    self.record(f"{name}.mean", metric.mean, ts=ts)

    def to_dict(
        self,
        since: Optional[float] = None,
        buckets: Optional[int] = None,
        names: Union[str, Sequence[str], None] = None,
    ) -> dict:
        """JSON-ready view: per-series rollup (+ optional downsample).

        Args:
            since: Only points at/after this wall-clock timestamp.
            buckets: Also include a ``points`` downsample per series.
            names: Glob pattern (or list of patterns) filtering series.
        """
        if isinstance(names, str):
            names = [names]
        out: Dict[str, dict] = {}
        for name in self.names():
            if names and not any(fnmatch.fnmatch(name, p) for p in names):
                continue
            s = self._series[name]
            entry = s.rollup(since=since)
            entry["total"] = s.total
            if buckets:
                entry["points"] = s.downsample(buckets, since=since)
            out[name] = entry
        return out


#: The process-global store every producer publishes into by default.
_STORE = TimeSeriesStore()


def get_store() -> TimeSeriesStore:
    return _STORE


def series(name: str, capacity: Optional[int] = None) -> Series:
    return _STORE.series(name, capacity=capacity)


def record(name: str, value: float, ts: Optional[float] = None) -> None:
    _STORE.record(name, value, ts=ts)


def reset() -> None:
    _STORE.reset()
