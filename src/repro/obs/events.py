"""JSONL trace event schema, writer and reader.

Every trace is a JSON-Lines file: one self-contained JSON object per line,
so traces stream, truncate safely, and grep cleanly.  Three record types
exist (see ``docs/observability.md`` for the full schema):

``meta``
    First line of every trace: ``{"type": "meta", "schema": 1, ...}``.
``span``
    A timed region, emitted when the region *exits*: name, wall/CPU
    duration, nesting depth, ``span_id``/``parent_id`` linkage, optional
    ``attrs`` payload and ``error`` (exception class name) on failure.
``event``
    A point-in-time observation attached to the enclosing span.

Values inside ``attrs`` are passed through :func:`jsonable`, which folds
numpy scalars/arrays into plain Python so every record always serializes.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator, List, Union

import numpy as np

#: Version stamped into each trace's meta record; bump on breaking changes.
SCHEMA_VERSION = 1

RECORD_TYPES = ("meta", "span", "event")


def jsonable(obj):
    """Best-effort conversion of an attribute payload to JSON-safe types."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, dict):
        return {str(k): jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return [jsonable(v) for v in obj.tolist()]
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, complex):
        return {"re": obj.real, "im": obj.imag}
    return repr(obj)


def format_sse(kind: str, payload: dict) -> str:
    """Render one Server-Sent-Events frame for the live telemetry stream.

    The payload goes through :func:`jsonable` like every trace record, so
    SSE consumers and trace readers see the same value folding.  Frames
    are ``event: <kind>`` + a single ``data:`` line (JSON never contains
    raw newlines) + the blank-line terminator.
    """
    data = json.dumps(jsonable(payload), sort_keys=True, separators=(",", ":"))
    return f"event: {kind}\ndata: {data}\n\n"


class JsonlWriter:
    """Appends one JSON object per line to a file or file-like sink."""

    def __init__(self, sink: Union[str, IO[str]]):
        if isinstance(sink, str):
            self._file = open(sink, "w")
            self._owns = True
        else:
            self._file = sink
            self._owns = False

    def write(self, record: dict) -> None:
        # One write() call per record: concurrent writers (the thread
        # backend traces from multiple threads into one sink) must never
        # interleave a record with another record's newline.
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        self._file.flush()

    def close(self) -> None:
        if self._owns:
            self._file.close()
        else:
            self._file.flush()


def iter_events(source: Union[str, Iterable[str]]) -> Iterator[dict]:
    """Yield parsed records from a JSONL trace (path or iterable of lines).

    Blank lines are skipped; malformed lines raise ``json.JSONDecodeError``
    (a trace that doesn't parse is a bug worth surfacing, not skipping).
    """
    if isinstance(source, str):
        with open(source) as f:
            yield from iter_events(f)
        return
    for line in source:
        line = line.strip()
        if line:
            yield json.loads(line)


def read_events(source: Union[str, Iterable[str]]) -> List[dict]:
    """Materialize :func:`iter_events`."""
    return list(iter_events(source))
