"""Merge per-worker trace shards back into one coherent trace.

Pool workers write their spans to private shard files
(``<trace>.shards/worker-<pid>.jsonl``, see
:meth:`repro.obs.tracer.Tracer.configure_shard`) because two processes
appending to one JSONL stream would interleave mid-line.  After the pool
drains, :func:`merge_shards` folds every shard into the *still-open* parent
trace:

* each shard record gets fresh span ids drawn from the parent tracer, so
  ids stay unique across the whole file (workers restart their counters
  at 1);
* shard *root* spans — whose ``parent_id`` is None inside the shard — are
  re-parented under the span that was current in the parent when the pool
  launched (carried in the shard's meta record), and every depth is
  shifted accordingly, so parent linkage survives the process boundary;
* each merged span/event is stamped with ``worker_pid`` in its attrs;
* shard meta records are dropped (the parent trace already has one), and
  merged shard files are deleted.

Because the merge happens while the launching span is still open, the
"children precede parents" file ordering the summarizer relies on is
preserved: merged worker records land before the parent span's own record.
A torn trailing line (a worker killed mid-write) is skipped and counted,
not fatal — the engine already retries that worker's chunk serially.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.logging import get_logger
from repro.obs.tracer import SHARD_DIR_SUFFIX, Tracer

logger = get_logger("obs.shards")

SHARD_GLOB = "worker-*.jsonl"


def shard_dir_for(trace_path: str) -> str:
    """The shard directory co-located with a parent trace file."""
    return trace_path + SHARD_DIR_SUFFIX


def merge_shards(
    tracer: Tracer,
    shard_dir: str,
    default_parent_id: Optional[int] = None,
    default_depth: int = 0,
    cleanup: bool = True,
) -> Dict[str, int]:
    """Fold every worker shard under ``shard_dir`` into the live tracer.

    ``default_parent_id``/``default_depth`` apply to shards whose meta
    record lacks parent linkage (or was lost to a torn write).  Returns
    merge statistics: shards seen, spans/events merged, malformed lines
    dropped.  Merged shard files are removed when ``cleanup`` is set, and
    the directory itself once it is empty.
    """
    stats = {"shards": 0, "spans": 0, "events": 0, "dropped": 0}
    for path in sorted(glob.glob(os.path.join(shard_dir, SHARD_GLOB))):
        stats["shards"] += 1
        dropped_before = stats["dropped"]
        _merge_one(tracer, path, default_parent_id, default_depth, stats)
        if stats["dropped"] > dropped_before:
            # An orphan shard from a killed worker ends in a torn line (or
            # lost its meta record entirely); its intact records merged
            # above — say so instead of silently eating the evidence.
            logger.warning(
                "shard %s: dropped %d malformed line(s) — worker likely "
                "killed mid-write; intact records were merged",
                os.path.basename(path), stats["dropped"] - dropped_before,
            )
        if cleanup:
            os.unlink(path)
    if cleanup:
        try:
            os.rmdir(shard_dir)
        except OSError as exc:
            # Non-shard files present, or the dir was never created.
            logger.debug("leaving shard dir %s in place: %s", shard_dir, exc)
    return stats


def _merge_one(
    tracer: Tracer,
    path: str,
    default_parent_id: Optional[int],
    default_depth: int,
    stats: Dict[str, int],
) -> None:
    records = _load_records(path, stats)
    worker_pid: Optional[int] = None
    parent_id = default_parent_id
    depth_shift = default_depth
    idmap: Dict[int, int] = {}

    def remap(shard_id: int) -> int:
        # Children emit before parents, so a parent's id is referenced
        # before its own record appears; allocate on first sight.
        mapped = idmap.get(shard_id)
        if mapped is None:
            mapped = idmap[shard_id] = tracer.allocate_span_id()
        return mapped

    for rec in records:
        rtype = rec.get("type")
        if rtype == "meta":
            worker = rec.get("worker") or {}
            if worker.get("pid") is not None:
                worker_pid = int(worker["pid"])
            if "parent_span_id" in worker:
                parent_id = worker["parent_span_id"]
                depth_shift = int(worker.get("parent_depth", default_depth))
            continue
        out = dict(rec)
        if rtype == "span":
            out["span_id"] = remap(rec["span_id"])
            if rec.get("parent_id") is None:
                out["parent_id"] = parent_id
            else:
                out["parent_id"] = remap(rec["parent_id"])
            out["depth"] = int(rec.get("depth", 0)) + depth_shift
            stats["spans"] += 1
        elif rtype == "event":
            if rec.get("parent_id") is None:
                out["parent_id"] = parent_id
            else:
                out["parent_id"] = remap(rec["parent_id"])
            stats["events"] += 1
        else:
            stats["dropped"] += 1
            continue
        if worker_pid is not None:
            attrs = dict(out.get("attrs") or {})
            attrs.setdefault("worker_pid", worker_pid)
            out["attrs"] = attrs
        tracer.emit(out)


def _load_records(path: str, stats: Dict[str, int]) -> List[Dict[str, Any]]:
    records: List[Dict[str, Any]] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                stats["dropped"] += 1  # torn write from a dead worker
    return records
