"""Automated regression detection against a committed baseline.

``repro obs regress --baseline tests/data/regress_baseline.json`` closes
the observability loop: instead of a human eyeballing ``golden.json``, a
deterministic **probe suite** re-measures the stack's headline physics
and compares each metric against the baseline with per-metric
tolerances.  Exit codes are CI-friendly:

* ``0`` — every check passed,
* ``1`` — at least one metric breached its tolerance (the breached
  metrics are named on stdout),
* ``2`` — the baseline file is missing or unreadable.

Three sources of "current" metrics:

* the built-in probe suite (default) — quick fig6 sweep, fast-path SINR
  grid, and a short link-layer simulation whose per-slave phase-error p95
  is checked against the paper's budget
  (:data:`repro.core.phasesync.PHASE_ERROR_BUDGET_P95_RAD`);
* ``--run ID|latest`` — the headline metrics a ledger record captured;
* ``--current FILE`` — a flat ``{metric: value}`` JSON file.

The **sync-health monitor** (:func:`sync_health_alarms`) is the
always-on half: every ``repro simulate`` run checks the phase-error
histograms against the budget and attaches an alarm to its ledger record
on breach — AirSync-style longitudinal sync diagnosis from telemetry,
not from staring at waveforms.

Fault injection for CI: ``REPRO_PHASE_SIGMA_SCALE=2`` doubles the
calibrated slave phase noise (see :mod:`repro.sim.fastsim`), which must
trip both the baseline comparison and the budget check.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.core.phasesync import PHASE_ERROR_BUDGET_P95_RAD
from repro.obs import metrics
from repro.obs.logging import get_logger
from repro.obs.tracer import trace

logger = get_logger(__name__)

#: Baseline file schema version.
BASELINE_SCHEMA = 1

#: Exit codes of ``repro obs regress``.
EXIT_OK = 0
EXIT_BREACH = 1
EXIT_NO_BASELINE = 2

#: Minimum histogram samples before the sync-health monitor will alarm.
SYNC_HEALTH_MIN_SAMPLES = 20

#: Phase-error histograms the sync-health monitor watches.
SYNC_HEALTH_METRICS = ("mac.phase_error_rad", "fastsim.phase_error_rad")


# ---------------------------------------------------------------------------
# Sync-health monitor (wired into every simulate run)
# ---------------------------------------------------------------------------


def sync_health_alarms(registry=None, budget_rad: float = PHASE_ERROR_BUDGET_P95_RAD) -> List[dict]:
    """Check per-slave phase-error p95 against the paper's budget.

    Reads the phase-error histograms accumulated during the run; any with
    enough samples and a p95 beyond ``budget_rad`` yields one alarm dict
    (suitable for a ledger record's ``alarms`` list).  Also mirrors each
    alarm as an ``obs.sync_alarm`` trace event.
    """
    reg = registry if registry is not None else metrics.get_registry()
    alarms = []
    for name in SYNC_HEALTH_METRICS:
        hist = reg.get(name)
        if hist is None or getattr(hist, "count", 0) < SYNC_HEALTH_MIN_SAMPLES:
            continue
        p95 = float(hist.percentile(95))
        if p95 > budget_rad:
            alarm = {
                "kind": "sync_health",
                "metric": name,
                "p95_rad": p95,
                "budget_rad": float(budget_rad),
                "count": int(hist.count),
            }
            alarms.append(alarm)
            trace.event("obs.sync_alarm", **alarm)
            logger.warning(
                "sync-health alarm: %s p95 %.4f rad exceeds the %.3f rad "
                "budget (%d samples)",
                name, p95, budget_rad, hist.count,
            )
    return alarms


# ---------------------------------------------------------------------------
# Probe suite
# ---------------------------------------------------------------------------


def _probe_fig6() -> Dict[str, float]:
    """Quick Fig. 6 sweep: SNR loss vs. misalignment (pure beamforming math)."""
    from repro.sim.experiments import run_fig6

    result = run_fig6(seed=1, n_channels=16)
    return {
        "fig6.loss_0p10rad_10db": result.reduction_at(10.0, 0.10),
        "fig6.loss_0p10rad_20db": result.reduction_at(20.0, 0.10),
    }


def _probe_sinr_grid() -> Dict[str, float]:
    """Fast-path SINR physics: joint-ZF post-beamforming SINR by size."""
    from repro.sim.fastsim import run_sinr_grid

    grid = run_sinr_grid(seed=12, sizes=(2, 4), n_trials=8)
    return {
        "fastsim.mean_sinr_db_n2": grid[2]["mean_sinr_db"],
        "fastsim.mean_sinr_db_n4": grid[4]["mean_sinr_db"],
    }


def _probe_simulate() -> Dict[str, float]:
    """Short link-layer run: goodput + the per-slave phase-error p95.

    Resets the in-process metrics registry first so the phase-error
    histogram reflects only this probe.
    """
    from repro.mac.simulator import DownlinkSimulator, LinkLayerConfig

    metrics.reset()
    sim_trace = DownlinkSimulator(
        LinkLayerConfig(n_aps=3, n_clients=3, duration_s=0.05, seed=5)
    ).run()
    out = {"sim.goodput_mbps": sim_trace.total_goodput_bps / 1e6}
    hist = metrics.get_registry().get("mac.phase_error_rad")
    if hist is not None and hist.count:
        out["sync.phase_error_p95_rad"] = float(hist.percentile(95))
    return out


#: The probe suite: name -> callable returning a flat metrics dict.
PROBES: Dict[str, Callable[[], Dict[str, float]]] = {
    "fig6": _probe_fig6,
    "sinr_grid": _probe_sinr_grid,
    "simulate": _probe_simulate,
}

#: Per-metric tolerances stamped into baselines by --update-baseline.
#: Probe metrics are deterministic at fixed seeds, so the tolerances
#: guard against *model/kernel changes*, not Monte Carlo noise; wall time
#: is machine-dependent and therefore informational only.
DEFAULT_TOLERANCES: Dict[str, dict] = {
    "fig6.loss_0p10rad_10db": {"tol_rel": 0.15},
    "fig6.loss_0p10rad_20db": {"tol_rel": 0.15},
    "fastsim.mean_sinr_db_n2": {"tol_abs": 1.0},
    "fastsim.mean_sinr_db_n4": {"tol_abs": 1.0},
    "sim.goodput_mbps": {"tol_rel": 0.35},
    "sync.phase_error_p95_rad": {
        "tol_rel": 0.5,
        "max": PHASE_ERROR_BUDGET_P95_RAD,
    },
    "probe.wall_s": {"informational": True},
}


def run_probes(
    probes: Optional[Dict[str, Callable[[], Dict[str, float]]]] = None,
) -> Dict[str, float]:
    """Run the probe suite; returns the flat current-metrics dict.

    Deterministic (fixed seeds throughout) and quick — a few seconds —
    so it can gate every CI run.  Includes ``probe.wall_s`` so wall-time
    drift is recorded (informational by default).
    """
    t0 = time.perf_counter()
    current: Dict[str, float] = {}
    for name, fn in (probes or PROBES).items():
        with trace.span("obs.regress.probe", probe=name):
            current.update(fn())
    current["probe.wall_s"] = time.perf_counter() - t0
    return current


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


@dataclass
class CheckResult:
    """Outcome of one metric's baseline comparison."""

    metric: str
    status: str  # "ok" | "breach" | "missing" | "info"
    current: Optional[float] = None
    expected: Optional[float] = None
    tolerance: Optional[float] = None
    detail: str = ""


@dataclass
class RegressReport:
    """All check outcomes of one ``repro obs regress`` invocation."""

    checks: List[CheckResult] = field(default_factory=list)

    @property
    def breaches(self) -> List[CheckResult]:
        return [c for c in self.checks if c.status in ("breach", "missing")]

    @property
    def passed(self) -> bool:
        return not self.breaches

    def format_table(self) -> str:
        lines = [
            f"{'metric':<30} {'status':<8} {'current':>12} {'baseline':>12} "
            f"{'tolerance':>12}"
        ]
        for c in self.checks:
            cur = "-" if c.current is None else f"{c.current:.6g}"
            exp = "-" if c.expected is None else f"{c.expected:.6g}"
            tol = "-" if c.tolerance is None else f"±{c.tolerance:.4g}"
            status = c.status.upper() if c.status in ("breach", "missing") else c.status
            row = f"{c.metric:<30} {status:<8} {cur:>12} {exp:>12} {tol:>12}"
            if c.detail:
                row += f"  {c.detail}"
            lines.append(row)
        if self.passed:
            lines.append(f"regression check passed ({len(self.checks)} metrics)")
        else:
            names = ", ".join(c.metric for c in self.breaches)
            lines.append(
                f"regression check FAILED: {len(self.breaches)} breached "
                f"({names})"
            )
        return "\n".join(lines)


def _tolerance(spec: dict) -> float:
    value = float(spec.get("value", 0.0))
    tol_abs = float(spec.get("tol_abs", 0.0))
    tol_rel = float(spec.get("tol_rel", 0.0))
    return max(tol_abs, tol_rel * abs(value))


def compare(
    current: Dict[str, float],
    baseline: dict,
    require_all: bool = True,
) -> RegressReport:
    """Compare current metrics against a baseline document.

    Baseline format (``schema: 1``)::

        {"schema": 1, "checks": {
            "fig6.loss_0p10rad_10db": {"value": 1.23, "tol_rel": 0.15},
            "sync.phase_error_p95_rad":
                {"value": 0.03, "tol_rel": 0.5, "max": 0.05},
            "probe.wall_s": {"value": 4.1, "informational": true}}}

    Per check: breach when ``|current - value|`` exceeds
    ``max(tol_abs, tol_rel * |value|)``, or when an optional hard
    ``min``/``max`` bound is crossed.  ``informational`` checks are
    reported but never breach.  A baseline metric absent from ``current``
    is a ``missing`` failure when ``require_all`` (probe mode), and
    skipped otherwise (ledger-record mode, where runs carry only their
    own command's headline metrics).
    """
    report = RegressReport()
    checks = baseline.get("checks", {})
    for name in sorted(checks):
        spec = checks[name]
        expected = spec.get("value")
        informational = bool(spec.get("informational"))
        if name not in current:
            if informational or not require_all:
                continue
            report.checks.append(CheckResult(
                metric=name, status="missing", expected=expected,
                detail="metric not produced by this run",
            ))
            continue
        cur = float(current[name])
        if informational or expected is None:
            report.checks.append(CheckResult(
                metric=name, status="info", current=cur, expected=expected,
            ))
            continue
        expected = float(expected)
        tol = _tolerance(spec)
        status, detail = "ok", ""
        if abs(cur - expected) > tol:
            status = "breach"
            detail = f"drifted {cur - expected:+.4g} from baseline"
        if "max" in spec and cur > float(spec["max"]):
            status = "breach"
            detail = f"exceeds hard max {float(spec['max']):.4g}"
        if "min" in spec and cur < float(spec["min"]):
            status = "breach"
            detail = f"below hard min {float(spec['min']):.4g}"
        report.checks.append(CheckResult(
            metric=name, status=status, current=cur, expected=expected,
            tolerance=tol, detail=detail,
        ))
    # metrics the run produced that the baseline doesn't know: informational
    for name in sorted(set(current) - set(checks)):
        report.checks.append(CheckResult(
            metric=name, status="info", current=float(current[name]),
            detail="not in baseline",
        ))
    return report


def load_baseline(path: str) -> Optional[dict]:
    """Parse a baseline file; ``None`` when missing/unreadable."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        logger.error("cannot load baseline %s: %s", path, exc)
        return None
    if not isinstance(doc, dict) or "checks" not in doc:
        logger.error("baseline %s has no 'checks' table", path)
        return None
    return doc


def make_baseline(current: Dict[str, float]) -> dict:
    """Build a baseline document from current metrics + default tolerances."""
    checks = {}
    for name, value in sorted(current.items()):
        spec: dict = {"value": value}
        spec.update(DEFAULT_TOLERANCES.get(name, {}))
        if "informational" not in spec and "tol_abs" not in spec \
                and "tol_rel" not in spec:
            spec["tol_rel"] = 0.25
        checks[name] = spec
    return {
        "schema": BASELINE_SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "checks": checks,
    }


def write_baseline(path: str, current: Dict[str, float]) -> None:
    doc = make_baseline(current)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
