"""Live sweep telemetry: a stderr status line + ``runtime.progress`` events.

A 30-minute fig9 sweep used to be silent until it returned.  The engine
(:mod:`repro.runtime.engine`) now drives a :class:`SweepProgress` tracker
with chunk-granular completions; the tracker renders

    fig9 [####------] 67/135 chunks  268/540 trials  41.2 trials/s  eta 7s  workers 4  retries 1

to stderr and mirrors every rendered update as a ``runtime.progress``
trace event, so live state and post-hoc analysis see the same numbers.

Rendering adapts to the sink:

* **TTY stderr** — a single carriage-return status line, repainted at
  most every ``min_interval_s``; a final newline on close.
* **non-TTY stderr** (CI logs, piped output) — plain progress lines,
  throttled to one per ``noninteractive_interval_s`` plus start/finish,
  so logs stay readable but long sweeps are never silent.
* ``REPRO_PROGRESS=0`` disables rendering entirely (trace events are
  still emitted); ``REPRO_PROGRESS=1`` forces the TTY-style line.

The tracker is parent-process-only state — workers never touch it — so it
cannot perturb the engine's bit-identical scheduling guarantees.
"""

from __future__ import annotations

import math
import os
import sys
import time
from typing import Optional, TextIO

from repro.obs import metrics, timeseries
from repro.obs.flightrec import record as flightrec_record
from repro.obs.tracer import trace

#: Environment variable: "0" disables the status line, "1" forces TTY mode.
PROGRESS_ENV = "REPRO_PROGRESS"

#: Minimum seconds between TTY repaints.
DEFAULT_MIN_INTERVAL_S = 0.2

#: Minimum seconds between non-TTY progress lines.
DEFAULT_NONINTERACTIVE_INTERVAL_S = 5.0

_BAR_WIDTH = 20


def _progress_mode(stream: TextIO) -> str:
    """``"tty"``, ``"plain"`` or ``"off"`` for the given sink."""
    env = os.environ.get(PROGRESS_ENV, "").strip()
    if env == "0":
        return "off"
    if env == "1":
        return "tty"
    try:
        interactive = stream.isatty()
    except (AttributeError, ValueError):
        interactive = False
    return "tty" if interactive else "plain"


class SweepProgress:
    """Chunk-granular progress accounting for one sweep run.

    The engine calls :meth:`chunk_done` for every finished work item (with
    its trial count), :meth:`chunk_failed` / :meth:`retry_done` around the
    serial-retry fault path, and :meth:`close` when the sweep exits.  All
    updates happen in the parent process.

    Args:
        name: Sweep name (shown in the status line and trace events).
        total_chunks: Work items in the whole grid (including resumed).
        total_trials: Trials in the whole grid.
        workers: Requested pool size.
        resumed_chunks / resumed_trials: Work already loaded from a
            checkpoint; counted as done from the start.
        stream: Output sink (default ``sys.stderr``).
        min_interval_s: TTY repaint throttle.
        noninteractive_interval_s: Plain-line throttle.
    """

    def __init__(
        self,
        name: str,
        total_chunks: int,
        total_trials: int,
        workers: int = 1,
        resumed_chunks: int = 0,
        resumed_trials: int = 0,
        stream: Optional[TextIO] = None,
        min_interval_s: float = DEFAULT_MIN_INTERVAL_S,
        noninteractive_interval_s: float = DEFAULT_NONINTERACTIVE_INTERVAL_S,
    ):
        self.name = name
        self.total_chunks = int(total_chunks)
        self.total_trials = int(total_trials)
        self.workers = int(workers)
        self.done_chunks = int(resumed_chunks)
        self.done_trials = int(resumed_trials)
        self.resumed_chunks = int(resumed_chunks)
        self.resumed_trials = int(resumed_trials)
        self.failures = 0
        self.retries = 0
        self.stream = stream if stream is not None else sys.stderr
        self.mode = _progress_mode(self.stream)
        self._min_interval = (
            min_interval_s if self.mode == "tty" else noninteractive_interval_s
        )
        self._t0 = time.monotonic()
        self._last_render = -float("inf")
        self._line_open = False
        self._closed = False
        self._m_trials = metrics.counter("runtime.trials_done")
        if self.total_chunks > 0:
            self._emit(force=True)  # announce the sweep immediately

    # -- engine-facing updates -----------------------------------------------

    def chunk_done(self, n_trials: int) -> None:
        """One work item finished (pool, serial, or serial-retry path)."""
        self.done_chunks += 1
        self.done_trials += int(n_trials)
        self._m_trials.inc(int(n_trials))
        self._emit(force=self.done_chunks >= self.total_chunks)

    def chunk_failed(self) -> None:
        """A pool future failed (kernel raised or the pool broke)."""
        self.failures += 1
        self._emit(force=True)

    def retry_done(self) -> None:
        """A failed chunk's serial in-parent retry succeeded."""
        self.retries += 1

    def close(self) -> None:
        """Final render + newline; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._emit(force=True, final=True)
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- derived quantities ----------------------------------------------------

    @property
    def elapsed_s(self) -> float:
        return time.monotonic() - self._t0

    @property
    def trials_per_s(self) -> float:
        """Fresh-trial throughput (checkpoint-resumed work excluded).

        Guarded against the zero-elapsed / zero-trial corner: a sweep
        that finishes (or renders) within one clock tick reports 0.0
        rather than an absurd or non-finite rate.
        """
        fresh = self.done_trials - self.resumed_trials
        elapsed = self.elapsed_s
        if fresh <= 0 or elapsed <= 1e-6:
            return 0.0
        rate = fresh / elapsed
        return rate if math.isfinite(rate) else 0.0

    @property
    def eta_s(self) -> Optional[float]:
        """Seconds to completion: 0.0 when done, None when unknowable."""
        remaining = self.total_trials - self.done_trials
        if remaining <= 0:
            return 0.0
        rate = self.trials_per_s
        if rate <= 0:
            return None
        eta = remaining / rate
        return eta if math.isfinite(eta) else None

    @property
    def workers_busy(self) -> int:
        """Workers with work left to do right now (tail-drain aware)."""
        remaining = self.total_chunks - self.done_chunks
        return max(min(remaining, self.workers), 0)

    @property
    def worker_utilization(self) -> float:
        """Busy fraction of the requested pool (0.0 when workers == 0)."""
        if self.workers <= 0:
            return 0.0
        return self.workers_busy / self.workers

    # -- live publication ------------------------------------------------------

    def _publish(self, payload: dict) -> None:
        """Mirror one rendered update into the live telemetry layer.

        Every rendered tick lands in the process-global time-series store
        (so ``/timeseries`` and the alert rules see sweep health), and —
        only when the serve layer is already loaded, i.e. a run with
        ``--serve-port`` — onto the SSE event bus.  A run without a
        server never imports ``repro.obs.serve``.
        """
        ts = time.time()
        # The last progress tick in the flight-recorder ring becomes the
        # crash bundle's progress.json — how far the sweep got.
        flightrec_record("runtime.progress", payload, ts=ts)
        store = timeseries.get_store()
        store.record("runtime.done_trials", self.done_trials, ts=ts)
        store.record("runtime.trials_per_s", self.trials_per_s, ts=ts)
        store.record("runtime.workers_busy", self.workers_busy, ts=ts)
        store.record("runtime.worker_utilization", self.worker_utilization, ts=ts)
        serve = sys.modules.get("repro.obs.serve")
        if serve is not None:
            serve.publish_event("progress", payload)

    # -- rendering -------------------------------------------------------------

    def _emit(self, force: bool = False, final: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        eta = self.eta_s
        payload = dict(
            sweep=self.name,
            done_chunks=self.done_chunks,
            total_chunks=self.total_chunks,
            done_trials=self.done_trials,
            total_trials=self.total_trials,
            trials_per_s=round(self.trials_per_s, 3),
            eta_s=None if eta is None else round(eta, 3),
            workers=self.workers,
            workers_busy=self.workers_busy,
            failures=self.failures,
            retries=self.retries,
            final=final,
        )
        trace.event("runtime.progress", **payload)
        self._publish(payload)
        if self.mode == "off":
            return
        line = self._format_line(final=final)
        if self.mode == "tty":
            self.stream.write("\r\x1b[2K" + line)
            self._line_open = True
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def _format_line(self, final: bool = False) -> str:
        frac = self.done_chunks / self.total_chunks if self.total_chunks else 1.0
        filled = int(round(frac * _BAR_WIDTH))
        bar = "#" * filled + "-" * (_BAR_WIDTH - filled)
        eta = self.eta_s
        if final:
            tail = f"done in {self.elapsed_s:.1f}s"
        elif eta is None:
            tail = "eta --"
        else:
            tail = f"eta {eta:.0f}s"
        parts = [
            f"{self.name} [{bar}] {self.done_chunks}/{self.total_chunks} chunks",
            f"{self.done_trials}/{self.total_trials} trials",
            f"{self.trials_per_s:.1f} trials/s",
            tail,
            f"workers {self.workers_busy}/{self.workers}",
        ]
        if self.resumed_chunks:
            parts.append(f"resumed {self.resumed_chunks}")
        if self.failures or self.retries:
            parts.append(f"retries {self.retries}/{self.failures}")
        return "  ".join(parts)
