"""Aggregate a JSONL trace into per-span-name statistics.

This powers both ``python -m repro obs summarize out.jsonl`` and the
``repro-trace`` console script.  The key derived quantity is **self time**:
a span's wall time minus its direct children's wall time, which is what a
profiler needs to rank hot *stages* (a ``joint_tx`` span is long, but the
time lives in its ``ofdm_mod``/``precoding``/``channel_apply`` children).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.events import iter_events


@dataclass
class SpanStats:
    """Aggregated timings for one span name."""

    name: str
    count: int = 0
    total_wall_s: float = 0.0
    total_cpu_s: float = 0.0
    total_self_s: float = 0.0
    max_wall_s: float = 0.0
    errors: int = 0

    @property
    def mean_wall_s(self) -> float:
        return self.total_wall_s / self.count if self.count else float("nan")


@dataclass
class TraceSummary:
    """Everything :func:`summarize` extracts from one trace."""

    spans: Dict[str, SpanStats] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    n_records: int = 0
    schema: Optional[int] = None
    total_wall_s: float = 0.0  # sum of root-span wall time

    def top(
        self,
        k: Optional[int] = None,
        sort: str = "self",
        name: Optional[str] = None,
    ) -> List[SpanStats]:
        """Span stats ranked by ``self``/``total``/``mean``/``count``.

        ``name`` is a shell-style glob (``fnmatch``) restricting the table
        to matching span names, e.g. ``--name 'phy.*'``.
        """
        key = {
            "self": lambda s: s.total_self_s,
            "total": lambda s: s.total_wall_s,
            "mean": lambda s: s.mean_wall_s if s.count else 0.0,
            "count": lambda s: s.count,
        }[sort]
        spans = self.spans.values()
        if name is not None:
            spans = [s for s in spans if fnmatchcase(s.name, name)]
        ranked = sorted(spans, key=key, reverse=True)
        return ranked[:k] if k is not None else ranked


def summarize(source: Union[str, Iterable[dict]]) -> TraceSummary:
    """Single-pass aggregation of a trace (path or iterable of records).

    Children are emitted before their parents in the JSONL stream (spans
    write on exit), so self time falls out of one forward pass: accumulate
    each finished span's wall time against its parent's id, and subtract
    whatever accumulated under a span's own id when it closes.
    """
    records = iter_events(source) if isinstance(source, str) else source
    summary = TraceSummary()
    child_wall: Dict[int, float] = {}
    for record in records:
        summary.n_records += 1
        kind = record.get("type")
        if kind == "meta":
            summary.schema = record.get("schema")
        elif kind == "event":
            name = record.get("name", "?")
            summary.events[name] = summary.events.get(name, 0) + 1
        elif kind == "span":
            name = record.get("name", "?")
            wall = float(record.get("wall_s", 0.0))
            stats = summary.spans.get(name)
            if stats is None:
                stats = summary.spans[name] = SpanStats(name=name)
            stats.count += 1
            stats.total_wall_s += wall
            stats.total_cpu_s += float(record.get("cpu_s", 0.0))
            stats.max_wall_s = max(stats.max_wall_s, wall)
            if "error" in record:
                stats.errors += 1
            own_children = child_wall.pop(record.get("span_id"), 0.0)
            stats.total_self_s += max(wall - own_children, 0.0)
            parent = record.get("parent_id")
            if parent is None:
                summary.total_wall_s += wall
            else:
                child_wall[parent] = child_wall.get(parent, 0.0) + wall
    return summary


def format_table(
    summary: TraceSummary,
    top_k: Optional[int] = None,
    sort: str = "self",
    name: Optional[str] = None,
) -> str:
    """Render the ranked span table (plus event counts) as text.

    ``name`` restricts both the span table and the event counts to names
    matching the glob.
    """
    lines = [
        f"{'span':<28} {'count':>7} {'total(ms)':>10} {'self(ms)':>10} "
        f"{'mean(ms)':>9} {'max(ms)':>9} {'cpu(ms)':>9} {'err':>4}"
    ]
    for s in summary.top(top_k, sort=sort, name=name):
        lines.append(
            f"{s.name:<28} {s.count:>7d} {s.total_wall_s * 1e3:>10.2f} "
            f"{s.total_self_s * 1e3:>10.2f} {s.mean_wall_s * 1e3:>9.3f} "
            f"{s.max_wall_s * 1e3:>9.3f} {s.total_cpu_s * 1e3:>9.2f} "
            f"{s.errors:>4d}"
        )
    events = summary.events
    if name is not None:
        events = {n: c for n, c in events.items() if fnmatchcase(n, name)}
    if events:
        lines.append("")
        lines.append("events: " + ", ".join(
            f"{n} x{count}" for n, count in sorted(events.items())
        ))
    lines.append(
        f"{summary.n_records} records, root wall time "
        f"{summary.total_wall_s * 1e3:.1f} ms"
    )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-trace``: summarize a JSONL trace from the command line."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Summarize a repro.obs JSONL trace (hot spans first).",
    )
    parser.add_argument("trace_file", help="path to a --trace JSONL output")
    parser.add_argument("--top", type=int, default=None, metavar="K",
                        help="show only the K hottest spans")
    parser.add_argument("--sort", choices=("self", "total", "mean", "count"),
                        default="self", help="ranking key (default: self time)")
    parser.add_argument("--name", metavar="GLOB", default=None,
                        help="only spans/events matching this glob "
                             "(e.g. 'phy.*')")
    args = parser.parse_args(argv)
    try:
        summary = summarize(args.trace_file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 1
    print(format_table(summary, top_k=args.top, sort=args.sort, name=args.name))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
