"""repro.obs — zero-dependency observability for the PHY/MAC/sim stack.

Three pillars (see ``docs/observability.md`` for schemas and a worked
debugging example):

* **Metrics** (:mod:`repro.obs.metrics`): process-global registry of
  counters, gauges and reservoir histograms; renders to dict/JSON.
* **Tracing** (:mod:`repro.obs.tracer`): ``with trace.span("joint_tx"):``
  context managers and a ``@traced`` decorator emitting timestamped JSONL
  records with nesting and wall/CPU timings.  Disabled by default with a
  shared no-op span, so instrumentation is ~free until a trace sink is
  configured.
* **Logging** (:mod:`repro.obs.logging`): one stderr handler for the
  ``repro`` logger hierarchy, keeping stdout clean for result tables.

Built on those, the v2 layer adds a **run ledger**
(:mod:`repro.obs.ledger` + :mod:`repro.obs.provenance`: append-only JSONL
history of every run with git sha, config hash, seed and headline metrics),
**live sweep progress** (:mod:`repro.obs.progress`), **metric export**
(:mod:`repro.obs.export`: OpenMetrics text and tidy CSV) and **regression
detection** (:mod:`repro.obs.regress`: headline-metric probes compared
against a committed baseline, plus the phase-sync health monitor).

The v3 layer crosses the process boundary: pool workers write per-process
trace *shards* reassembled into one tree (:mod:`repro.obs.shards`), and the
attribution profiler (:mod:`repro.obs.profile`, ``repro obs profile``)
decomposes sweep wall time into compute / dispatch / serialization / idle
per worker from the engine's ``runtime.chunk`` dispatch envelopes.

The v4 layer makes the run *watchable while it executes*: a bounded
ring-buffer time-series store (:mod:`repro.obs.timeseries`) that the
engine, progress tracker and sync-error models publish into
incrementally; a declarative alert-rule engine
(:mod:`repro.obs.alerts`) enforcing the §7.3 phase-error budgets and
worker-utilization floors live, with hysteresis and for-duration
debouncing; and a stdlib HTTP endpoint (:mod:`repro.obs.serve`,
``repro obs serve`` / ``--serve-port``) exposing ``/metrics``
(OpenMetrics), ``/timeseries`` + ``/alerts`` (JSON) and ``/events``
(SSE).  ``repro.obs.serve`` is deliberately *not* imported here: runs
without a server never pay for the HTTP layer, and producers publish to
its event bus only when it is already loaded.

Typical CLI wiring::

    from repro.obs import metrics, trace, setup_logging

    setup_logging(verbosity=1)
    trace.configure("out.jsonl")
    ...  # run experiments
    trace.close()
    metrics.write_json("metrics.json")
"""

from repro.obs import metrics, shards, timeseries
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.blackbox import (
    list_bundles,
    load_bundle,
    set_run_context,
    signal_guard,
    write_crash_bundle,
)
from repro.obs.events import SCHEMA_VERSION, format_sse, iter_events, read_events
from repro.obs.flightrec import FlightRecorder, get_recorder
from repro.obs.ledger import Ledger, RunRecord, default_runs_dir, new_run_id
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import MetricsRegistry, Timer, get_registry
from repro.obs.progress import SweepProgress
from repro.obs.shards import merge_shards
from repro.obs.summary import TraceSummary, format_table, summarize
from repro.obs.timeseries import TimeSeriesStore, get_store
from repro.obs.tracer import NULL_SPAN, Span, Tracer, trace, traced

__all__ = [
    "SCHEMA_VERSION",
    "AlertEngine",
    "AlertRule",
    "FlightRecorder",
    "Ledger",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunRecord",
    "Span",
    "SweepProgress",
    "TimeSeriesStore",
    "Timer",
    "TraceSummary",
    "Tracer",
    "default_runs_dir",
    "format_sse",
    "format_table",
    "get_logger",
    "get_recorder",
    "get_registry",
    "get_store",
    "iter_events",
    "list_bundles",
    "load_bundle",
    "merge_shards",
    "metrics",
    "new_run_id",
    "read_events",
    "set_run_context",
    "setup_logging",
    "shards",
    "signal_guard",
    "summarize",
    "timeseries",
    "trace",
    "traced",
    "write_crash_bundle",
]
