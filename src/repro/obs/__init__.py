"""repro.obs — zero-dependency observability for the PHY/MAC/sim stack.

Three pillars (see ``docs/observability.md`` for schemas and a worked
debugging example):

* **Metrics** (:mod:`repro.obs.metrics`): process-global registry of
  counters, gauges and reservoir histograms; renders to dict/JSON.
* **Tracing** (:mod:`repro.obs.tracer`): ``with trace.span("joint_tx"):``
  context managers and a ``@traced`` decorator emitting timestamped JSONL
  records with nesting and wall/CPU timings.  Disabled by default with a
  shared no-op span, so instrumentation is ~free until a trace sink is
  configured.
* **Logging** (:mod:`repro.obs.logging`): one stderr handler for the
  ``repro`` logger hierarchy, keeping stdout clean for result tables.

Typical CLI wiring::

    from repro.obs import metrics, trace, setup_logging

    setup_logging(verbosity=1)
    trace.configure("out.jsonl")
    ...  # run experiments
    trace.close()
    metrics.write_json("metrics.json")
"""

from repro.obs import metrics
from repro.obs.events import SCHEMA_VERSION, iter_events, read_events
from repro.obs.logging import get_logger, setup_logging
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.summary import TraceSummary, format_table, summarize
from repro.obs.tracer import NULL_SPAN, Span, Tracer, trace, traced

__all__ = [
    "SCHEMA_VERSION",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "TraceSummary",
    "Tracer",
    "format_table",
    "get_logger",
    "get_registry",
    "iter_events",
    "metrics",
    "read_events",
    "setup_logging",
    "summarize",
    "trace",
    "traced",
]
