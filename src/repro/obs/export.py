"""Metric export: OpenMetrics text and tidy CSV time series.

Two consumers, two shapes:

* **Scrapers/dashboards** want the *current* state of one run in the
  OpenMetrics text format — :func:`metrics_to_openmetrics` renders a
  metrics-registry snapshot (live registry, ``to_dict()`` output, or a
  ``--metrics`` JSON file) with counters as ``_total``, gauges verbatim
  and histograms as summaries with ``quantile`` labels.
* **Plots/notebooks** want *history* as a tidy (long-form) table —
  :func:`ledger_to_csv` flattens a ledger slice to one
  ``(run, metric, value)`` row per headline metric, and
  :func:`metrics_to_csv` does the same for a single snapshot.

Everything is pure string rendering over plain dicts: no network, no
third-party dependencies, so the exporters work anywhere the ledger does.
"""

from __future__ import annotations

import csv
import io
import re
import time
from typing import Dict, Iterable, Union

from repro.obs.ledger import RunRecord
from repro.obs.metrics import MetricsRegistry

#: Histogram percentiles rendered as OpenMetrics summary quantiles.
_QUANTILES = (("p50", "0.5"), ("p90", "0.9"), ("p95", "0.95"), ("p99", "0.99"))

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def openmetrics_name(name: str) -> str:
    """Fold a dotted metric name into the OpenMetrics charset.

    ``mac.phase_error_rad`` becomes ``mac_phase_error_rad``; a leading
    digit gains an underscore prefix.
    """
    out = _NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _snapshot(source: Union[MetricsRegistry, Dict[str, dict]]) -> Dict[str, dict]:
    return source.to_dict() if isinstance(source, MetricsRegistry) else source


def metrics_to_openmetrics(source: Union[MetricsRegistry, Dict[str, dict]]) -> str:
    """Render a metrics snapshot as OpenMetrics exposition text.

    Every metric family gets ``# HELP`` and ``# TYPE`` metadata lines —
    real scrapers (prometheus, ``promtool check metrics``) reject
    expositions without them — and the text terminates with ``# EOF``.

    Args:
        source: A live :class:`MetricsRegistry` or its ``to_dict()`` form
            (which is also what ``--metrics out.json`` files contain).

    Returns:
        OpenMetrics text ending with ``# EOF``.
    """
    snapshot = _snapshot(source)
    lines = []
    for name in sorted(snapshot):
        data = snapshot[name]
        om = openmetrics_name(name)
        kind = data.get("type")
        if kind == "counter":
            lines.append(f"# HELP {om} repro counter {name}")
            lines.append(f"# TYPE {om} counter")
            lines.append(f"{om}_total {data['value']:.10g}")
        elif kind == "gauge":
            if data.get("value") is None:
                continue
            lines.append(f"# HELP {om} repro gauge {name}")
            lines.append(f"# TYPE {om} gauge")
            lines.append(f"{om} {data['value']:.10g}")
        elif kind == "histogram":
            lines.append(f"# HELP {om} repro histogram {name} (reservoir summary)")
            lines.append(f"# TYPE {om} summary")
            count = data.get("count", 0)
            for key, q in _QUANTILES:
                if key in data:
                    lines.append(f'{om}{{quantile="{q}"}} {data[key]:.10g}')
            lines.append(f"{om}_count {count}")
            if count and "mean" in data:
                lines.append(f"{om}_sum {data['mean'] * count:.10g}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Sample-name suffixes each OpenMetrics type may emit (summary quantile
#: samples use the bare family name with a ``quantile`` label).
_TYPE_SUFFIXES = {
    "counter": ("_total", "_created"),
    "gauge": ("",),
    "summary": ("", "_count", "_sum", "_created"),
}

_VALID_FAMILY_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)(?: \S+)?$"
)


def validate_openmetrics(text: str) -> list:
    """``promtool check metrics``-style validation of an exposition.

    Returns a list of problem strings (empty = valid).  Checks the
    structural rules scrapers actually enforce: a single terminating
    ``# EOF``, ``# HELP``/``# TYPE`` metadata preceding each family's
    samples, metadata emitted once per family, sample names matching
    the declared family + type-legal suffix, and parseable float values.
    """
    problems = []
    if not text.endswith("# EOF\n"):
        problems.append("exposition must terminate with a '# EOF' line")
    lines = text.splitlines()
    meta: Dict[str, Dict[str, str]] = {}  # family -> {"help": ..., "type": ...}
    eof_seen = False
    for i, line in enumerate(lines, start=1):
        if not line:
            problems.append(f"line {i}: blank lines are not allowed")
            continue
        if eof_seen:
            problems.append(f"line {i}: content after '# EOF'")
            break
        if line == "# EOF":
            eof_seen = True
            continue
        if line.startswith("# "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE", "UNIT"):
                problems.append(f"line {i}: malformed metadata line: {line!r}")
                continue
            keyword, family = parts[1].lower(), parts[2]
            if not _VALID_FAMILY_RE.match(family):
                problems.append(f"line {i}: invalid family name {family!r}")
                continue
            entry = meta.setdefault(family, {})
            if keyword in entry:
                problems.append(
                    f"line {i}: duplicate '# {keyword.upper()}' for {family}"
                )
            entry[keyword] = parts[3] if len(parts) > 3 else ""
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {i}: unparseable sample line: {line!r}")
            continue
        name, value = m.group("name"), m.group("value")
        try:
            float(value)
        except ValueError:
            problems.append(f"line {i}: non-numeric sample value {value!r}")
        family = None
        for fam, entry in meta.items():
            kind = entry.get("type", "untyped")
            suffixes = _TYPE_SUFFIXES.get(kind, ("",))
            if any(name == fam + s for s in suffixes):
                family = fam
                break
        if family is None:
            problems.append(
                f"line {i}: sample {name!r} has no preceding "
                f"'# TYPE' metadata for its family"
            )
            continue
        entry = meta[family]
        if "type" not in entry:
            problems.append(f"line {i}: family {family!r} missing '# TYPE'")
        if "help" not in entry:
            problems.append(f"line {i}: family {family!r} missing '# HELP'")
    if not eof_seen:
        problems.append("no '# EOF' terminator found")
    return problems


# ---------------------------------------------------------------------------
# Tidy CSV
# ---------------------------------------------------------------------------

#: Column order of the tidy ledger export.
LEDGER_CSV_FIELDS = (
    "run_id", "ts", "iso_time", "command", "git_sha", "config_hash",
    "master_seed", "status", "duration_s", "metric", "value",
)


def ledger_to_csv(records: Iterable[RunRecord]) -> str:
    """Flatten ledger records to a tidy CSV time series.

    One row per ``(run, headline metric)``; runs without headline metrics
    still contribute one row with ``metric=duration_s`` so wall-time
    trends always plot.  Columns: :data:`LEDGER_CSV_FIELDS`.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(LEDGER_CSV_FIELDS)
    for r in records:
        base = [
            r.run_id,
            f"{r.ts:.3f}",
            time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(r.ts)),
            r.command,
            r.git_sha or "",
            r.config_hash or "",
            "" if r.master_seed is None else r.master_seed,
            r.status,
            f"{r.duration_s:.4f}",
        ]
        rows = sorted(r.metrics.items()) or [("duration_s", r.duration_s)]
        for metric, value in rows:
            writer.writerow(base + [metric, value])
    return buf.getvalue()


def metrics_to_csv(source: Union[MetricsRegistry, Dict[str, dict]]) -> str:
    """Flatten one metrics snapshot to tidy ``metric,field,value`` rows.

    Histograms contribute one row per statistic (count/mean/min/max/p*);
    counters and gauges one ``value`` row each.
    """
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(("metric", "type", "field", "value"))
    snapshot = _snapshot(source)
    for name in sorted(snapshot):
        data = dict(snapshot[name])
        kind = data.pop("type", "?")
        for field in sorted(data):
            if data[field] is None:
                continue
            writer.writerow((name, kind, field, data[field]))
    return buf.getvalue()
