"""Black-box flight recorder: a bounded in-memory ring of recent telemetry.

Traces answer "what happened" only when a sink was configured *before*
the run; the time-series store keeps numeric history but drops the
qualitative frames (which chunk, which alert, which progress tick)
around it.  Neither helps when a sweep crashes, hangs, or is killed —
the moments where the recent past matters most and nothing was asked to
keep it.

The :class:`FlightRecorder` is the always-on answer: a process-global,
bounded ``deque`` of ``{"ts", "kind", "data"}`` records that the
existing publication points feed for free —

* span opens/closes and events (:mod:`repro.obs.tracer`, only while a
  trace sink is live),
* progress ticks (:class:`repro.obs.progress.SweepProgress`),
* store-level metric samples (:meth:`repro.obs.timeseries.TimeSeriesStore
  .record`; the hot-path ``Series.record`` handle calls used by fastsim
  are deliberately *not* tapped),
* alert transitions (:class:`repro.obs.alerts.AlertEngine`),
* engine chunk envelopes and watchdog events
  (:mod:`repro.runtime.engine` / :mod:`repro.runtime.watchdog`),
* SSE bus frames (:class:`repro.obs.serve.EventBus`).

Appends are a lock + ``deque.append`` — the same "negligible until you
need it" bar the null tracer holds (<5% on a recorder-enabled sweep,
enforced by ``tests/obs/test_flightrec.py``).  The ring is snapshot-able
at any moment; crash-forensics bundles (:mod:`repro.obs.blackbox`) dump
it to ``runs/crash-<runid>/flightrec.json``.

``REPRO_FLIGHTREC=0`` disables recording entirely;
``REPRO_FLIGHTREC_CAPACITY`` resizes the ring (default
:data:`DEFAULT_CAPACITY` records).
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

#: Records retained in the ring (oldest evicted first).
DEFAULT_CAPACITY = 4096

#: Environment variable: "0" disables the recorder entirely.
ENABLE_ENV = "REPRO_FLIGHTREC"

#: Environment variable overriding the ring capacity.
CAPACITY_ENV = "REPRO_FLIGHTREC_CAPACITY"

#: Version stamped into dumps; bump on breaking record-shape changes.
DUMP_SCHEMA = 1

logger = logging.getLogger("repro.obs.flightrec")


def _env_capacity() -> int:
    raw = os.environ.get(CAPACITY_ENV, "").strip()
    if raw:
        try:
            return max(int(raw), 1)
        except ValueError:
            logger.debug("ignoring malformed %s=%r", CAPACITY_ENV, raw)
    return DEFAULT_CAPACITY


def _env_enabled() -> bool:
    return os.environ.get(ENABLE_ENV, "").strip() != "0"


class FlightRecorder:
    """Bounded ring buffer of recent ``(ts, kind, data)`` telemetry records.

    Thread-safe: producers append from the engine, watchdog, evaluator
    and HTTP threads concurrently.  ``total`` counts every record ever
    accepted, so consumers can tell how much history the ring evicted
    (``dropped = total - len(ring)``).
    """

    __slots__ = ("capacity", "enabled", "total", "_ring", "_lock")

    def __init__(
        self,
        capacity: Optional[int] = None,
        enabled: Optional[bool] = None,
    ):
        self.capacity = capacity if capacity is not None else _env_capacity()
        if self.capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.enabled = enabled if enabled is not None else _env_enabled()
        self.total = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        kind: str,
        data: Optional[dict] = None,
        ts: Optional[float] = None,
    ) -> None:
        """Append one record; a no-op while disabled."""
        if not self.enabled:
            return
        rec: Dict[str, Any] = {
            "ts": time.time() if ts is None else ts,
            "kind": kind,
        }
        if data:
            rec["data"] = data
        with self._lock:
            self._ring.append(rec)
            self.total += 1

    # -- reading ---------------------------------------------------------------

    @property
    def dropped(self) -> int:
        """Records evicted from the ring so far."""
        return self.total - len(self._ring)

    def snapshot(self, kind: Optional[str] = None) -> List[Dict[str, Any]]:
        """Copies of the retained records, oldest first."""
        with self._lock:
            records = list(self._ring)
        if kind is not None:
            records = [r for r in records if r["kind"] == kind]
        return records

    def last(self, kind: Optional[str] = None) -> Optional[Dict[str, Any]]:
        """The newest retained record (of ``kind``, when given), or None."""
        records = self.snapshot(kind=kind)
        return records[-1] if records else None

    def dump(self) -> Dict[str, Any]:
        """JSON-ready dump: meta header + the retained records."""
        with self._lock:
            records = list(self._ring)
            total = self.total
        return {
            "schema": DUMP_SCHEMA,
            "ts": time.time(),
            "pid": os.getpid(),
            "capacity": self.capacity,
            "enabled": self.enabled,
            "total": total,
            "dropped": total - len(records),
            "records": records,
        }

    def dump_json(self, path: Union[str, Path]) -> Path:
        """Write :meth:`dump` to ``path`` as indented JSON; returns the path."""
        from repro.obs.events import jsonable

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as f:
            json.dump(jsonable(self.dump()), f, indent=2, sort_keys=True)
            f.write("\n")
        return path

    def clear(self) -> None:
        """Drop all retained records and reset the counters."""
        with self._lock:
            self._ring.clear()
            self.total = 0


#: The process-global recorder every publication point feeds.
_RECORDER = FlightRecorder()


def get_recorder() -> FlightRecorder:
    """The process-global flight recorder."""
    return _RECORDER


def record(kind: str, data: Optional[dict] = None, ts: Optional[float] = None) -> None:
    """Append one record to the process-global recorder."""
    _RECORDER.record(kind, data, ts=ts)
