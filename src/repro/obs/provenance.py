"""Run provenance: who/what/where produced a result.

Every ledger record (:mod:`repro.obs.ledger`) embeds a provenance block so
a metrics file found six months from now can be tied back to the exact
code, configuration and machine that produced it:

* **git identity** — ``HEAD`` sha and a dirty flag, resolved by shelling
  out to ``git`` (best-effort: ``None`` outside a checkout or without the
  binary, never an exception);
* **config hash** — a short SHA-256 over the canonical JSON of the run's
  parameter dict, so "same configuration" is one string comparison even
  when argv ordering or defaults differ;
* **platform snapshot** — OS, Python, numpy, usable CPU count.

Everything is stdlib-only and cheap enough to run on every CLI
invocation.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
from typing import Optional

from repro.obs.events import jsonable

#: Length of the truncated config-hash hex digest kept in ledger records.
CONFIG_HASH_LEN = 12

_GIT_TIMEOUT_S = 3.0


def _git(*args: str) -> Optional[str]:
    """Run one git command; ``None`` on any failure (no repo, no binary)."""
    try:
        out = subprocess.run(
            ("git", *args),
            capture_output=True,
            text=True,
            timeout=_GIT_TIMEOUT_S,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip()


def git_sha(short: bool = False) -> Optional[str]:
    """The current checkout's HEAD commit, or ``None`` outside a repo."""
    sha = _git("rev-parse", "--short" if short else "--verify", "HEAD")
    return sha or None


def git_dirty() -> Optional[bool]:
    """Whether the working tree has uncommitted changes (``None`` = unknown)."""
    status = _git("status", "--porcelain")
    if status is None:
        return None
    return bool(status.strip())


def config_hash(config: dict) -> str:
    """Short, stable hash of a run-parameter dict.

    The dict is normalized through :func:`repro.obs.events.jsonable` and
    serialized with sorted keys, so logically equal configurations hash
    identically regardless of key order or numpy scalar types.
    """
    blob = json.dumps(jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:CONFIG_HASH_LEN]


def usable_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def platform_snapshot() -> dict:
    """Machine/environment facts worth keeping with every run record."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": usable_cpus(),
        "hostname": platform.node(),
    }


def collect(config: Optional[dict] = None) -> dict:
    """The full provenance block of one run (see module docstring)."""
    return {
        "git_sha": git_sha(),
        "git_dirty": git_dirty(),
        "config_hash": config_hash(config or {}),
        **platform_snapshot(),
    }
