"""Live HTTP telemetry: OpenMetrics scrape, JSON windows, SSE stream, watch.

This is the production-facing surface ROADMAP item 5's long-running
service mounts: while a sweep or simulation executes, a stdlib-only
(`http.server` + daemon threads) endpoint exposes

========================  ====================================================
``/metrics``              Current registry state, OpenMetrics text
                          (``application/openmetrics-text``) — scrapeable by
                          prometheus, rendered by :mod:`repro.obs.export`.
``/timeseries``           Windowed rollups from the
                          :class:`~repro.obs.timeseries.TimeSeriesStore`;
                          query params ``since_s`` (window, seconds back),
                          ``buckets`` (downsample), ``name`` (glob).
``/alerts``               Rule states + currently-firing list from the
                          :class:`~repro.obs.alerts.AlertEngine`.
``/events``               Server-Sent-Events stream of ``progress`` frames
                          (mirroring ``runtime.progress``) and ``alert``
                          transition frames, with keep-alive comments.
``/``                     JSON index of the above.
========================  ====================================================

:class:`TelemetryServer` also owns the *evaluator thread*: every
``eval_interval_s`` it samples the metrics registry into the store
(counters/gauges/histogram-percentiles grow histories without touching
hot paths) and runs the alert engine, publishing transitions to the
in-process :class:`EventBus` that feeds ``/events``.

The ``watch`` client (``repro obs watch URL``) tails any such endpoint —
local or remote — as a refreshing terminal status table, and exits
:data:`EXIT_ALERT` under ``--fail-on-alert`` if any rule fired while
watching, so shell scripts and CI can gate on live health.

Nothing here imports outside the stdlib + the obs stack; a run without
``--serve-port`` never imports this module (producers publish to the bus
only when it is already loaded — see ``SweepProgress``).
"""

from __future__ import annotations

import json
import queue
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, TextIO, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.obs.alerts import AlertEngine, load_rules
from repro.obs.events import format_sse
from repro.obs.export import metrics_to_openmetrics
from repro.obs.flightrec import record as flightrec_record
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, counter, get_registry
from repro.obs.timeseries import TimeSeriesStore, get_store

logger = get_logger("obs.serve")

#: Exit code for "an alert rule fired" (``watch --fail-on-alert``,
#: ``--serve-port ... --fail-on-alert`` runs).  Distinct from the regress
#: gate's 1 (breach) / 2 (no baseline).
EXIT_ALERT = 3

#: Content type real OpenMetrics scrapers negotiate.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

#: Seconds between evaluator passes (registry sample + alert evaluation).
DEFAULT_EVAL_INTERVAL_S = 0.25

#: Seconds an idle SSE connection waits before writing a keep-alive comment.
SSE_KEEPALIVE_S = 0.5

#: Frames dropped because a subscriber queue was full; exported on
#: ``/metrics`` and recorded into the time-series store so a slow SSE
#: client is *visible*, not just tolerated.
_EVENTS_DROPPED = counter("obs.events.dropped")


class EventBus:
    """Fan-out of ``(kind, payload)`` frames to SSE subscriber queues.

    Publishing never blocks a producer: subscriber queues are bounded and
    a full queue drops the frame for that subscriber (a slow SSE client
    must not stall the sweep).  Drops are counted per bus (``dropped``)
    and process-wide on the ``obs.events.dropped`` metric.
    """

    def __init__(self, maxsize: int = 256):
        self.maxsize = int(maxsize)
        self._subscribers: List["queue.Queue[Tuple[str, dict]]"] = []
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0

    def subscribe(self) -> "queue.Queue[Tuple[str, dict]]":
        q: "queue.Queue[Tuple[str, dict]]" = queue.Queue(maxsize=self.maxsize)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q: "queue.Queue[Tuple[str, dict]]") -> None:
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    def publish(self, kind: str, payload: dict) -> None:
        with self._lock:
            subscribers = list(self._subscribers)
        self.published += 1
        flightrec_record("bus." + kind, payload)
        dropped = 0
        for q in subscribers:
            try:
                q.put_nowait((kind, dict(payload)))
            except queue.Full:
                dropped += 1
        if dropped:
            self.dropped += dropped
            _EVENTS_DROPPED.inc(dropped)
            get_store().record("obs.events.dropped", float(_EVENTS_DROPPED.value))


#: The process-global bus producers publish into (when this module is
#: loaded at all — see :func:`publish_event`).
BUS = EventBus()


def publish_event(kind: str, payload: dict) -> None:
    """Publish a frame to the global bus (progress, alerts, lifecycle)."""
    BUS.publish(kind, payload)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    block_on_close = False
    telemetry: "TelemetryServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt: str, *args) -> None:  # noqa: A003 - stdlib API
        logger.debug("http %s", fmt % args)

    def _send_body(self, body: bytes, content_type: str, status: int = 200) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, obj: dict, status: int = 200) -> None:
        body = (json.dumps(obj, sort_keys=True) + "\n").encode()
        self._send_body(body, "application/json; charset=utf-8", status=status)

    # -- routes ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib API
        tele = self.server.telemetry  # type: ignore[attr-defined]
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        params = parse_qs(split.query)
        try:
            if route == "/metrics":
                body = metrics_to_openmetrics(tele.registry).encode()
                self._send_body(body, OPENMETRICS_CONTENT_TYPE)
            elif route == "/timeseries":
                self._send_json(tele.timeseries_view(params))
            elif route == "/alerts":
                self._send_json(tele.alerts_view())
            elif route == "/events":
                self._serve_events(tele)
            elif route == "/":
                self._send_json({
                    "service": "repro live telemetry",
                    "endpoints": ["/metrics", "/timeseries", "/alerts", "/events"],
                    "ts": time.time(),
                })
            else:
                self._send_json({"error": f"no such endpoint: {route}"}, status=404)
        except (BrokenPipeError, ConnectionResetError):
            # client went away mid-response; nothing to salvage
            pass  # repro: noqa[OBS005]

    def _serve_events(self, tele: "TelemetryServer") -> None:
        q = tele.bus.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream; charset=utf-8")
            self.send_header("Cache-Control", "no-cache")
            # SSE is an unbounded stream: no Content-Length, close delimits.
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(format_sse("hello", {
                "ts": time.time(),
                "endpoints": ["/metrics", "/timeseries", "/alerts"],
            }).encode())
            self.wfile.flush()
            while not tele.stopping.is_set():
                try:
                    kind, payload = q.get(timeout=SSE_KEEPALIVE_S)
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                self.wfile.write(format_sse(kind, payload).encode())
                self.wfile.flush()
        finally:
            tele.bus.unsubscribe(q)


class TelemetryServer:
    """The live telemetry endpoint + evaluator thread for one process.

    Defaults bind the process-global registry/store/bus, and an alert
    engine over :func:`repro.obs.alerts.load_rules` (built-ins overlaid
    with ``runs/alerts.toml`` when present).  ``port=0`` binds an
    ephemeral port; read :attr:`port`/:attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        registry: Optional[MetricsRegistry] = None,
        store: Optional[TimeSeriesStore] = None,
        engine: Optional[AlertEngine] = None,
        rules_path: Optional[str] = None,
        bus: Optional[EventBus] = None,
        eval_interval_s: float = DEFAULT_EVAL_INTERVAL_S,
    ):
        self.host = host
        self.port = int(port)
        self.registry = registry if registry is not None else get_registry()
        self.store = store if store is not None else get_store()
        self.engine = engine if engine is not None else AlertEngine(
            load_rules(rules_path)
        )
        self.bus = bus if bus is not None else BUS
        self.eval_interval_s = float(eval_interval_s)
        self.stopping = threading.Event()
        self._httpd: Optional[_Server] = None
        self._threads: List[threading.Thread] = []

    # -- lifecycle -------------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._httpd is not None

    def start(self) -> "TelemetryServer":
        if self._httpd is not None:
            return self
        httpd = _Server((self.host, self.port), _Handler)
        httpd.telemetry = self
        self._httpd = httpd
        self.port = httpd.server_address[1]
        serve_thread = threading.Thread(
            target=httpd.serve_forever, name="repro-telemetry-http", daemon=True,
            kwargs={"poll_interval": 0.1},
        )
        eval_thread = threading.Thread(
            target=self._eval_loop, name="repro-telemetry-eval", daemon=True,
        )
        self._threads = [serve_thread, eval_thread]
        serve_thread.start()
        eval_thread.start()
        logger.info("serving live telemetry on %s", self.url)
        self.bus.publish("serve", {"ts": time.time(), "url": self.url,
                                   "status": "started"})
        return self

    def stop(self) -> None:
        """Final evaluation pass, then shut the endpoint down (idempotent)."""
        if self._httpd is None:
            return
        self.evaluate_once()  # judge end-of-run state before going dark
        self.bus.publish("serve", {"ts": time.time(), "url": self.url,
                                   "status": "stopping"})
        self.stopping.set()
        httpd, self._httpd = self._httpd, None
        httpd.shutdown()
        httpd.server_close()
        for t in self._threads:
            t.join(timeout=2.0)
        self._threads = []
        logger.info("live telemetry on %s stopped", self.url)

    # -- evaluation ------------------------------------------------------------

    def _eval_loop(self) -> None:
        while not self.stopping.wait(self.eval_interval_s):
            self.evaluate_once()

    def evaluate_once(self) -> List[dict]:
        """Sample the registry into the store, run the alert rules once."""
        now = time.time()
        try:
            self.store.sample_registry(self.registry, ts=now)
            transitions = self.engine.evaluate(self.store, now=now)
        except Exception:
            logger.exception("telemetry evaluation pass failed")
            return []
        for t in transitions:
            self.bus.publish("alert", t)
        return transitions

    # -- endpoint views --------------------------------------------------------

    def timeseries_view(self, params: Dict[str, List[str]]) -> dict:
        since = None
        if "since_s" in params:
            since = time.time() - float(params["since_s"][0])
        buckets = int(params["buckets"][0]) if "buckets" in params else None
        names = params.get("name")
        return {
            "ts": time.time(),
            "series": self.store.to_dict(since=since, buckets=buckets,
                                         names=names),
        }

    def alerts_view(self) -> dict:
        return {
            "ts": time.time(),
            "rules": self.engine.to_dict(),
            "firing": self.engine.firing(),
        }


# ---------------------------------------------------------------------------
# watch: tail an endpoint as a live terminal table
# ---------------------------------------------------------------------------


def fetch_json(url: str, timeout: float = 2.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode())


def _format_value(v: object) -> str:
    if v is None:
        return "--"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_status(timeseries: dict, alerts: dict) -> str:
    """One watch frame: series table + alert summary."""
    rows = [("series", "count", "last", "mean", "p95")]
    for name, entry in sorted(timeseries.get("series", {}).items()):
        if not entry.get("count"):
            continue
        rows.append((
            name,
            _format_value(entry.get("count")),
            _format_value(entry.get("last")),
            _format_value(entry.get("mean")),
            _format_value(entry.get("p95")),
        ))
    widths = [max(len(r[c]) for r in rows) for c in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        cells = [row[0].ljust(widths[0])]
        cells += [row[c].rjust(widths[c]) for c in range(1, len(row))]
        lines.append("  ".join(cells))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    firing = alerts.get("firing", [])
    states = alerts.get("rules", {})
    lines.append("")
    lines.append(f"alerts: {len(firing)} firing / {len(states)} rules")
    for state in firing:
        lines.append(
            f"  FIRING [{state.get('severity')}] {state.get('rule')}: "
            f"{state.get('series')} {state.get('stat')}="
            f"{_format_value(state.get('value'))} vs "
            f"{_format_value(state.get('threshold'))} ({state.get('op')})"
        )
    return "\n".join(lines)


def watch(
    url: str,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    duration_s: Optional[float] = None,
    fail_on_alert: bool = False,
    name: Optional[str] = None,
    stream: Optional[TextIO] = None,
    timeout: float = 2.0,
) -> int:
    """Tail a telemetry endpoint as a refreshing status table.

    Returns 0 on a healthy watch, 1 when the endpoint was never
    reachable, and :data:`EXIT_ALERT` when ``fail_on_alert`` is set and
    any rule was firing during the watch.
    """
    out = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    if not base.startswith("http"):
        base = "http://" + base
    ts_url = base + "/timeseries"
    if name:
        ts_url += f"?name={name}"
    deadline = None if duration_s is None else time.monotonic() + duration_s
    saw_firing = False
    reached = False
    n = 0
    while True:
        try:
            timeseries = fetch_json(ts_url, timeout=timeout)
            alerts = fetch_json(base + "/alerts", timeout=timeout)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            out.write(f"watch: {base} unreachable: {exc}\n")
        else:
            reached = True
            saw_firing = saw_firing or bool(alerts.get("firing"))
            out.write(render_status(timeseries, alerts) + "\n\n")
        out.flush()
        n += 1
        if iterations is not None and n >= iterations:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        time.sleep(interval_s)
    if not reached:
        return 1
    if fail_on_alert and saw_firing:
        out.write("watch: alert rules fired during the watch\n")
        return EXIT_ALERT
    return 0


# ---------------------------------------------------------------------------
# events streaming: tail /events with reconnect
# ---------------------------------------------------------------------------

#: Reconnect backoff: first retry delay and the cap it doubles up to.
STREAM_BACKOFF_S = 0.5
STREAM_BACKOFF_CAP_S = 8.0

#: Consecutive failed (re)connect attempts tolerated by default.
DEFAULT_STREAM_RETRIES = 5


def _iter_sse_frames(resp):
    """Yield ``(event, data_dict)`` frames from an open SSE response.

    Comment lines (keep-alives) yield ``(None, None)`` so callers can
    treat them as liveness.  Returns when the server closes the stream.
    """
    event: Optional[str] = None
    data_lines: List[str] = []
    while True:
        raw = resp.readline()
        if not raw:
            return  # stream closed
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if not line:
            if data_lines:
                try:
                    payload = json.loads("\n".join(data_lines))
                except json.JSONDecodeError:
                    payload = {"raw": "\n".join(data_lines)}
                yield event or "message", payload
            event, data_lines = None, []
            continue
        if line.startswith(":"):
            yield None, None  # keep-alive comment
            continue
        if line.startswith("event:"):
            event = line[len("event:"):].strip()
        elif line.startswith("data:"):
            data_lines.append(line[len("data:"):].strip())


def stream_events(
    url: str,
    reconnect: bool = True,
    max_retries: int = DEFAULT_STREAM_RETRIES,
    max_events: Optional[int] = None,
    duration_s: Optional[float] = None,
    stream: Optional[TextIO] = None,
    timeout: float = 5.0,
) -> int:
    """Tail a telemetry endpoint's ``/events`` SSE stream as JSON lines.

    A dropped connection (server restart, network blip, the run between
    two sweeps) is *reconnected* with capped exponential backoff
    (:data:`STREAM_BACKOFF_S` doubling up to
    :data:`STREAM_BACKOFF_CAP_S`); any received frame — keep-alives
    included — resets the retry budget.  Returns 0 when ``max_events``
    or ``duration_s`` bounds the tail, and 1 only once ``max_retries``
    consecutive attempts failed (immediately on the first drop under
    ``reconnect=False``).
    """
    out = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    if not base.startswith("http"):
        base = "http://" + base
    events_url = base + "/events"
    deadline = None if duration_s is None else time.monotonic() + duration_s
    seen = 0
    attempts = 0
    backoff = STREAM_BACKOFF_S
    while True:
        if deadline is not None and time.monotonic() >= deadline:
            return 0
        try:
            resp = urllib.request.urlopen(events_url, timeout=timeout)
        except (urllib.error.URLError, OSError) as exc:
            out.write(f"events: {events_url} unreachable: {exc}\n")
            out.flush()
        else:
            try:
                for kind, payload in _iter_sse_frames(resp):
                    attempts = 0  # live server: reset the retry budget
                    backoff = STREAM_BACKOFF_S
                    if kind is not None:
                        seen += 1
                        out.write(
                            json.dumps({"event": kind, **payload},
                                       sort_keys=True) + "\n"
                        )
                        out.flush()
                    if max_events is not None and seen >= max_events:
                        return 0
                    if deadline is not None and time.monotonic() >= deadline:
                        return 0
            except (urllib.error.URLError, OSError) as exc:
                out.write(f"events: stream dropped: {exc}\n")
                out.flush()
            else:
                out.write("events: stream closed by server\n")
                out.flush()
            finally:
                resp.close()
        if not reconnect:
            return 1
        attempts += 1
        if attempts > max_retries:
            out.write(
                f"events: giving up after {max_retries} failed "
                f"reconnect attempts\n"
            )
            out.flush()
            return 1
        out.write(f"events: reconnecting in {backoff:.1f}s "
                  f"(attempt {attempts}/{max_retries})\n")
        out.flush()
        time.sleep(backoff)
        backoff = min(backoff * 2.0, STREAM_BACKOFF_CAP_S)
