"""MegaMIMO / JMB reproduction: joint multi-user beamforming from
distributed access points (Rahul, Kumar, Katabi — SIGCOMM 2012).

Quick start::

    from repro import MegaMimoSystem, SystemConfig
    from repro.phy.mcs import get_mcs

    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7), client_snr_db=20.0
    )
    system.run_sounding(start_time=0.0)
    report = system.joint_transmit(
        [b"hello client 0", b"hello client 1"], get_mcs(2), start_time=1e-3
    )
    for reception in report.receptions:
        print(reception.decoded.payload)

See ``examples/`` for complete scenarios and ``repro.sim.experiments`` for
the paper's evaluation figures.
"""

from repro.core.beamforming import diversity_precoder, zero_forcing_precoder
from repro.core.phasesync import PhaseSynchronizer
from repro.core.system import JointTransmissionReport, MegaMimoSystem, SystemConfig
from repro.mac.rate import EffectiveSnrRateSelector
from repro.phy.mcs import ALL_MCS, get_mcs, mcs_by_name

__version__ = "1.0.0"

__all__ = [
    "MegaMimoSystem",
    "SystemConfig",
    "JointTransmissionReport",
    "zero_forcing_precoder",
    "diversity_precoder",
    "PhaseSynchronizer",
    "EffectiveSnrRateSelector",
    "ALL_MCS",
    "get_mcs",
    "mcs_by_name",
    "__version__",
]
