"""MegaMIMO / JMB reproduction: joint multi-user beamforming from
distributed access points (Rahul, Kumar, Katabi — SIGCOMM 2012).

Quick start::

    from repro import MegaMimoSystem, SystemConfig
    from repro.phy.mcs import get_mcs

    system = MegaMimoSystem.create(
        SystemConfig(n_aps=2, n_clients=2, seed=7), client_snr_db=20.0
    )
    system.run_sounding(start_time=0.0)
    report = system.joint_transmit(
        [b"hello client 0", b"hello client 1"], get_mcs(2), start_time=1e-3
    )
    for reception in report.receptions:
        print(reception.decoded.payload)

See ``examples/`` for complete scenarios and ``repro.sim.experiments`` for
the paper's evaluation figures.

The re-exports below resolve lazily (PEP 562): ``import repro`` must stay
dependency-free so runtime-free subpackages — ``repro.analysis``, which CI
runs with only ruff installed — never drag in numpy/scipy through the
package ``__init__``.
"""

from __future__ import annotations

import importlib
from typing import Any

__version__ = "1.0.0"

#: Lazily resolved re-export -> defining module.
_EXPORTS = {
    "MegaMimoSystem": "repro.core.system",
    "SystemConfig": "repro.core.system",
    "JointTransmissionReport": "repro.core.system",
    "zero_forcing_precoder": "repro.core.beamforming",
    "diversity_precoder": "repro.core.beamforming",
    "PhaseSynchronizer": "repro.core.phasesync",
    "EffectiveSnrRateSelector": "repro.mac.rate",
    "ALL_MCS": "repro.phy.mcs",
    "get_mcs": "repro.phy.mcs",
    "mcs_by_name": "repro.phy.mcs",
}

__all__ = [*_EXPORTS, "__version__"]


def __getattr__(name: str) -> Any:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each export at most once
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
