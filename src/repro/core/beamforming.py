"""Multi-user beamforming: zero-forcing precoding and coherent diversity.

Implements the paper's §4 math.  With channel matrix H (clients x antennas)
the APs transmit ``W x`` where ``W = k H^{-1}``; the scalar ``k`` enforces
the per-antenna power constraint (§9: "APs multiply the signals by kH^-1 (k
accounts for the maximum power constraint at APs)"), so each client sees the
diagonal effective channel ``k I`` and a signal strength of ``k^2``.

Also provides the analysis used by the Fig. 6 microbenchmark: the SNR
reduction caused by a phase misalignment at one (or more) transmitters.
"""

from __future__ import annotations

import numpy as np

from repro.utils.units import linear_to_db
from repro.utils.validation import require


def zero_forcing_precoder(channel: np.ndarray, max_power_per_antenna: float = 1.0):
    """Zero-forcing precoder with the paper's power normalization.

    Args:
        channel: (n_clients, n_antennas) channel matrix H; square in the
            paper's setting (as many streams as total AP antennas), but a
            wide matrix (more antennas than clients) is accepted and handled
            with the right pseudo-inverse.
        max_power_per_antenna: Per-antenna average power limit.

    Returns:
        (precoder, k): ``precoder`` is (n_antennas, n_clients) so the antenna
        signal vector is ``precoder @ x``; ``k`` is the effective diagonal
        gain each client sees.  A stack of matrices (leading batch axes) is
        accepted and returns a stacked precoder plus an array ``k`` — the
        stacked ``np.linalg`` results are bit-identical to matrix-at-a-time
        calls, which the backend-equivalence harness relies on.

    Raises:
        np.linalg.LinAlgError: If the channel matrix is singular.
    """
    channel = np.asarray(channel, dtype=complex)
    require(channel.ndim >= 2, "channel must be a matrix (or a stack of them)")
    n_clients, n_antennas = channel.shape[-2], channel.shape[-1]
    require(
        n_antennas >= n_clients,
        f"need at least as many antennas ({n_antennas}) as clients ({n_clients})",
    )
    if n_antennas == n_clients:
        inverse = np.linalg.inv(channel)
    else:
        inverse = np.linalg.pinv(channel)
        _check_right_inverse(channel, inverse)
    # per-antenna transmit power for unit-power streams: row norms squared
    row_power = np.sum(np.abs(inverse) ** 2, axis=-1)
    worst = np.max(row_power, axis=-1)
    require(bool(np.all(worst > 0)), "degenerate channel")
    k = np.sqrt(max_power_per_antenna / worst)
    if channel.ndim == 2:
        k = float(k)
        return k * inverse, k
    return k[..., None, None] * inverse, k


def _check_right_inverse(channel: np.ndarray, inverse: np.ndarray) -> None:
    """Reject precoders that do not actually diagonalize the channel.

    ``np.linalg.pinv`` "succeeds" on rank-deficient wide matrices (e.g. two
    collinear clients) but the result is a least-squares fit, not a right
    inverse — beamforming with it would silently mix the streams.
    """
    residual = channel @ inverse - np.eye(channel.shape[-2])
    if np.max(np.abs(residual)) > 1e-6:
        raise np.linalg.LinAlgError(
            "channel matrix is (numerically) rank deficient; streams cannot "
            "be separated by zero-forcing"
        )


def zero_forcing_precoder_wideband(
    channels: np.ndarray, max_power_per_antenna: float = 1.0
):
    """Per-subcarrier ZF precoders sharing one frame-wide power scalar k.

    The per-AP power constraint is physical: it caps each AP's *average*
    transmit power over the OFDM frame, i.e. across subcarriers — not per
    subcarrier.  Normalizing with a single k chosen so the worst AP's
    average power hits the limit lets well-conditioned subcarriers make up
    for deeply-faded ones, which is what a real wideband transmitter does
    (and §9's "k accounts for the maximum power constraint at APs" — one k,
    known "in each subcarrier", giving signal strength k^2 everywhere).

    Args:
        channels: (n_bins, n_clients, n_antennas) channel tensor, or a stack
            of them with leading batch axes (e.g. a trial axis).

    Returns:
        (precoders, k): precoders is (..., n_bins, n_antennas, n_clients);
        the effective channel on every bin is ``k I``.  ``k`` is a float for
        a single tensor and a (...,)-shaped array for a stack.

    Raises:
        np.linalg.LinAlgError: If any subcarrier's matrix is singular.
    """
    channels = np.asarray(channels, dtype=complex)
    require(channels.ndim >= 3, "need (..., n_bins, n_clients, n_antennas)")
    n_clients, n_antennas = channels.shape[-2], channels.shape[-1]
    require(n_antennas >= n_clients, "need at least as many antennas as clients")
    if channels.ndim == 3:
        # Reference path: one matrix inversion per subcarrier, kept loopy so
        # it stays trivially auditable against §4's per-subcarrier math.
        n_bins = channels.shape[0]
        inverses = np.empty((n_bins, n_antennas, n_clients), dtype=complex)
        for b in range(n_bins):
            if n_antennas == n_clients:
                inverses[b] = np.linalg.inv(channels[b])
            else:
                inverses[b] = np.linalg.pinv(channels[b])
                _check_right_inverse(channels[b], inverses[b])
    else:
        # Batched path: stacked inv/pinv over all bins of all trials at once.
        # Stacked np.linalg results are bit-identical to the per-matrix loop
        # above (pinned by tests/runtime/test_backend_equivalence.py).
        if n_antennas == n_clients:
            inverses = np.linalg.inv(channels)
        else:
            inverses = np.linalg.pinv(channels)
            _check_right_inverse(channels, inverses)
    # per-antenna power averaged over subcarriers, for unit-power streams
    per_antenna = np.mean(np.sum(np.abs(inverses) ** 2, axis=-1), axis=-2)
    worst = np.max(per_antenna, axis=-1)
    require(bool(np.all(worst > 0)), "degenerate channel")
    k = np.sqrt(max_power_per_antenna / worst)
    if channels.ndim == 3:
        k = float(k)
        return k * inverses, k
    return k[..., None, None, None] * inverses, k


def diversity_precoder(channel_row: np.ndarray, max_power_per_antenna: float = 1.0) -> np.ndarray:
    """Coherent-diversity beamforming weights for a single client (§8).

    Each AP i transmits ``h_i^* / |h_i| * x`` — full per-AP power with the
    conjugate phase, so all signals add coherently at the client.

    Args:
        channel_row: (n_antennas,) channel from each AP antenna to the client.

    Returns:
        (n_antennas,) weight vector.
    """
    channel_row = np.asarray(channel_row, dtype=complex).ravel()
    magnitude = np.abs(channel_row)
    weights = np.zeros_like(channel_row)
    nonzero = magnitude > 1e-15
    weights[nonzero] = np.conj(channel_row[nonzero]) / magnitude[nonzero]
    return weights * np.sqrt(max_power_per_antenna)


def effective_channel(
    channel: np.ndarray,
    precoder: np.ndarray,
    phase_errors: np.ndarray = None,
) -> np.ndarray:
    """The channel clients actually experience: ``H diag(e^{j err}) W``.

    Args:
        channel: (n_clients, n_antennas) true channel at transmission time.
        precoder: (n_antennas, n_clients) beamforming matrix.
        phase_errors: Per-antenna phase misalignment in radians (0 = perfect
            sync).  This models slave APs whose phase correction is off.
    """
    channel = np.asarray(channel, dtype=complex)
    precoder = np.asarray(precoder, dtype=complex)
    if phase_errors is None:
        return channel @ precoder
    phase_errors = np.asarray(phase_errors, dtype=float).ravel()
    require(
        phase_errors.size == channel.shape[1],
        "need one phase error per transmit antenna",
    )
    rotation = np.exp(1j * phase_errors)
    return (channel * rotation[None, :]) @ precoder


def sinr_after_beamforming(
    channel: np.ndarray,
    precoder: np.ndarray,
    noise_power: float,
    phase_errors: np.ndarray = None,
) -> np.ndarray:
    """Per-client SINR given (possibly misaligned) joint beamforming.

    The diagonal of the effective channel carries each client's signal; the
    off-diagonal leakage caused by misalignment is interference.
    """
    require(noise_power > 0, "noise power must be positive")
    eff = effective_channel(channel, precoder, phase_errors)
    signal = np.abs(np.diag(eff)) ** 2
    interference = np.sum(np.abs(eff) ** 2, axis=1) - signal
    return signal / (interference + noise_power)


def snr_reduction_from_misalignment(
    channel: np.ndarray,
    misalignment_rad: float,
    snr_db: float,
    misaligned_antenna: int = -1,
) -> np.ndarray:
    """Fig. 6 analysis: per-client SNR loss (dB) from one slave's phase error.

    Computes ZF SINR with and without a phase error of ``misalignment_rad``
    at one antenna, with noise set so the aligned system runs at ``snr_db``.

    Returns:
        Per-client SNR reduction in dB (positive = loss).
    """
    channel = np.asarray(channel, dtype=complex)
    precoder, k = zero_forcing_precoder(channel)
    noise_power = k**2 / 10.0 ** (snr_db / 10.0)
    aligned = sinr_after_beamforming(channel, precoder, noise_power)
    errors = np.zeros(channel.shape[1])
    errors[misaligned_antenna] = misalignment_rad
    misaligned = sinr_after_beamforming(channel, precoder, noise_power, errors)
    return linear_to_db(aligned) - linear_to_db(misaligned)


def snr_reduction_grid(
    channels: np.ndarray,
    misalignments: np.ndarray,
    snrs_db: np.ndarray,
    misaligned_antenna: int = -1,
) -> np.ndarray:
    """Batched Fig. 6 grid: SNR loss for every (channel, snr, misalignment).

    Vectorized equivalent of calling :func:`snr_reduction_from_misalignment`
    for each (snr_db, misalignment) pair on each channel of a stack: the ZF
    precoder is computed once per channel (stacked), then one broadcast
    matmul evaluates every misalignment on every channel.  Because the
    scalar helper recomputes the *same* precoder deterministically per call,
    the grid is bit-identical to the scalar nest.

    Args:
        channels: (..., n_clients, n_antennas) channel matrix stack.
        misalignments: (M,) phase errors in radians.
        snrs_db: (S,) aligned-system SNR operating points.

    Returns:
        (..., S, M, n_clients) per-client SNR reduction in dB.
    """
    channels = np.asarray(channels, dtype=complex)
    mis = np.atleast_1d(np.asarray(misalignments, dtype=float))
    snrs = np.atleast_1d(np.asarray(snrs_db, dtype=float))
    precoder, k = zero_forcing_precoder(channels)
    k = np.asarray(k, dtype=float)
    noise = k[..., None] ** 2 / 10.0 ** (snrs / 10.0)  # (..., S)

    eff0 = channels @ precoder  # (..., C, C)
    sig0 = np.abs(np.diagonal(eff0, axis1=-2, axis2=-1)) ** 2
    intf0 = np.sum(np.abs(eff0) ** 2, axis=-1) - sig0
    aligned = sig0[..., None, :] / (intf0[..., None, :] + noise[..., :, None])

    n_antennas = channels.shape[-1]
    errors = np.zeros((mis.size, n_antennas))
    errors[:, misaligned_antenna] = mis
    rotation = np.exp(1j * errors)  # (M, A)
    rotated = channels[..., None, :, :] * rotation[:, None, :]  # (..., M, C, A)
    eff = rotated @ precoder[..., None, :, :]  # (..., M, C, C)
    sig = np.abs(np.diagonal(eff, axis1=-2, axis2=-1)) ** 2  # (..., M, C)
    intf = np.sum(np.abs(eff) ** 2, axis=-1) - sig
    misaligned = (
        sig[..., None, :, :]
        / (intf[..., None, :, :] + noise[..., :, None, None])
    )  # (..., S, M, C)
    return linear_to_db(aligned)[..., :, None, :] - linear_to_db(misaligned)


def interference_to_noise_ratio(
    channel: np.ndarray,
    precoder: np.ndarray,
    noise_power: float,
    phase_errors: np.ndarray,
    nulled_client: int,
) -> float:
    """INR at a client where all streams are nulled (Fig. 8 methodology).

    "we choose a client at which all APs null their interference ... and
    measure the received signal power at that client" — the precoder carries
    no stream for ``nulled_client``, so anything it receives beyond noise is
    misalignment leakage.
    """
    channel = np.asarray(channel, dtype=complex)
    precoder = np.asarray(precoder, dtype=complex)
    phase_errors = np.asarray(phase_errors, dtype=float)
    rotation = np.exp(1j * phase_errors)
    row = channel[nulled_client] * rotation
    received = row @ precoder
    # no stream is transmitted for the nulled client, so only the other
    # clients' streams can leak power into it
    others = np.ones(received.size, dtype=bool)
    others[nulled_client] = False
    return float(np.sum(np.abs(received[others]) ** 2) / noise_power)
