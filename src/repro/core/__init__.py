"""MegaMIMO's core: joint multi-user beamforming from distributed APs.

This package implements the paper's contribution proper:

* zero-forcing multi-user beamforming with the paper's per-AP power
  normalization, plus the diversity (coherent-combining) mode of §8;
* the distributed phase-synchronization protocol of §4-§5 — lead election,
  reference-channel capture, per-packet direct phase measurement from the
  sync header, and long-term-averaged CFO extrapolation within a packet;
* the interleaved channel-measurement (sounding) protocol of §5.1;
* an end-to-end sample-level system (`MegaMimoSystem`) that runs sounding
  and joint data transmission over the simulated medium;
* the 802.11n-compatibility sounding trick of §6; and
* decoupled per-receiver measurements of §7 and the appendix.
"""

from repro.core.beamforming import (
    diversity_precoder,
    effective_channel,
    sinr_after_beamforming,
    snr_reduction_from_misalignment,
    zero_forcing_precoder,
)
from repro.core.compat80211n import Compat80211nSounder, StitchedChannelEstimate
from repro.core.decoupled import DecoupledChannelBook
from repro.core.phasesync import PhaseSynchronizer, ReferenceChannel, SyncObservation
from repro.core.sounding import SoundingPlan, SoundingResult, interleaved_sounding_frame
from repro.core.system import JointTransmissionReport, MegaMimoSystem, SystemConfig

__all__ = [
    "zero_forcing_precoder",
    "diversity_precoder",
    "effective_channel",
    "sinr_after_beamforming",
    "snr_reduction_from_misalignment",
    "PhaseSynchronizer",
    "ReferenceChannel",
    "SyncObservation",
    "SoundingPlan",
    "SoundingResult",
    "interleaved_sounding_frame",
    "MegaMimoSystem",
    "SystemConfig",
    "JointTransmissionReport",
    "Compat80211nSounder",
    "StitchedChannelEstimate",
    "DecoupledChannelBook",
]
