"""The channel-measurement phase: interleaved sounding (paper §5.1).

Frame layout (times in samples at the channel rate)::

    [lead sync header | per-AP CFO blocks | n_rounds x n_aps interleaved LTS]

* The **lead sync header** (STS + 2 LTS) triggers the slaves, gives clients
  timing/CFO lock to the lead, and gives each slave its reference channel
  h_lead(0) (§5.1c).
* **CFO blocks**: each AP in turn sends two back-to-back LTS copies so every
  client can measure that AP's carrier offset ("the channel measurement
  transmission uses CFO symbols from each AP followed by channel estimation
  symbols", §5.1b).
* **Interleaved channel-estimation symbols**: the APs take 80-sample turns,
  ``n_rounds`` times.  Interleaving keeps per-AP measurements close together
  in time so rotating them to the common reference time needs only a short,
  low-error extrapolation; repetition lets clients average out noise (§5.1a).

Clients refine each AP's CFO from the round-to-round rotation of its channel
estimates (period ``n_aps * 80`` samples), using the CFO-block estimate only
to resolve the phase-wrap ambiguity; they then de-rotate every estimate to
the reference time and average (§5.1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import CP_LENGTH, FFT_SIZE
from repro.phy.cfo import estimate_cfo_fine
from repro.phy.channel_est import estimate_channel_lts
from repro.phy.preamble import (
    SYNC_HEADER_LTS_REPEATS,
    long_training_sequence,
    lts_symbol_offsets,
    sync_header,
    sync_header_length,
)
from repro.utils.validation import require

#: Samples per interleaved channel-estimation slot (CP + LTS).
SLOT_LENGTH = CP_LENGTH + FFT_SIZE
#: Samples per per-AP CFO block (double guard + two LTS copies).
CFO_BLOCK_LENGTH = 2 * CP_LENGTH + 2 * FFT_SIZE

#: Offset (samples) of the phase reference instant inside the sync header:
#: the midpoint of the header's two LTS copies, which is where the averaged
#: header channel estimate is effectively taken.
REFERENCE_OFFSET = int(lts_symbol_offsets(SYNC_HEADER_LTS_REPEATS)[0] + FFT_SIZE)


@dataclass
class SoundingPlan:
    """Geometry of a sounding frame.

    Attributes:
        n_aps: Number of participating APs (AP 0 is the lead).
        n_rounds: Interleaved repetitions for noise averaging.
        sample_rate: Channel sample rate.
    """

    n_aps: int
    n_rounds: int = 4
    sample_rate: float = 10e6

    @property
    def header_length(self) -> int:
        return sync_header_length()

    @property
    def cfo_section_length(self) -> int:
        return self.n_aps * CFO_BLOCK_LENGTH

    @property
    def interleaved_length(self) -> int:
        return self.n_rounds * self.n_aps * SLOT_LENGTH

    @property
    def frame_length(self) -> int:
        return self.header_length + self.cfo_section_length + self.interleaved_length

    def cfo_block_start(self, ap_index: int) -> int:
        return self.header_length + ap_index * CFO_BLOCK_LENGTH

    def slot_start(self, ap_index: int, round_index: int) -> int:
        require(0 <= ap_index < self.n_aps, "bad AP index")
        require(0 <= round_index < self.n_rounds, "bad round index")
        return (
            self.header_length
            + self.cfo_section_length
            + (round_index * self.n_aps + ap_index) * SLOT_LENGTH
        )

    def slot_center_offset(self, ap_index: int, round_index: int) -> float:
        """Sample offset of a slot's effective measurement instant."""
        return self.slot_start(ap_index, round_index) + CP_LENGTH + FFT_SIZE / 2.0

    @property
    def round_period_samples(self) -> int:
        """Spacing between one AP's consecutive round slots."""
        return self.n_aps * SLOT_LENGTH


def interleaved_sounding_frame(plan: SoundingPlan, ap_index: int) -> np.ndarray:
    """The time-domain samples AP ``ap_index`` transmits during sounding.

    The lead additionally transmits the sync header; every AP transmits its
    CFO block and one LTS in each of its interleaved slots, and is silent
    elsewhere.
    """
    frame = np.zeros(plan.frame_length, dtype=complex)
    if ap_index == 0:
        header = sync_header()
        frame[: header.size] = header
    cfo_block = long_training_sequence(repeats=2)  # 32 guard + 2 x 64
    start = plan.cfo_block_start(ap_index)
    frame[start : start + cfo_block.size] = cfo_block
    slot_symbol = long_training_sequence(repeats=1, cp_length=CP_LENGTH)
    for r in range(plan.n_rounds):
        s = plan.slot_start(ap_index, r)
        frame[s : s + slot_symbol.size] = slot_symbol
    return frame


@dataclass
class ClientSoundingEstimate:
    """One client's output of the sounding phase.

    Attributes:
        channels: (n_aps, 64) channel estimates rotated to the reference time.
        cfos_hz: (n_aps,) per-AP carrier offsets as seen by this client.
        noise_power: Estimated per-bin noise power (reported to the APs for
            rate selection, §9).
    """

    channels: np.ndarray
    cfos_hz: np.ndarray
    noise_power: float


@dataclass
class SoundingResult:
    """Aggregate sounding output the APs use for beamforming.

    Attributes:
        client_estimates: Per-client estimates, in client order.
        reference_time: Absolute time all channels refer to.
    """

    client_estimates: List[ClientSoundingEstimate]
    reference_time: float

    def channel_matrix(self, subcarrier_bin: int) -> np.ndarray:
        """(n_clients, n_aps) channel matrix on one FFT bin."""
        return np.stack(
            [est.channels[:, subcarrier_bin] for est in self.client_estimates]
        )

    def channel_tensor(self) -> np.ndarray:
        """(64, n_clients, n_aps) channel tensor over all bins."""
        per_client = [est.channels.T for est in self.client_estimates]  # (64, n_aps)
        return np.stack(per_client, axis=1)


def estimate_single_ap(
    samples: np.ndarray, plan: SoundingPlan, ap: int
):
    """Estimate one AP's channel, CFO and estimate dispersion from a
    received sounding frame.

    Returns:
        (channel, cfo_hz, residual_var): the 64-bin channel de-rotated to
        the reference time, the refined CFO, and the per-bin dispersion of
        the per-round estimates (a noise-power estimate).
    """
    samples = np.asarray(samples, dtype=complex).ravel()
    require(samples.size >= plan.frame_length, "sounding capture too short")
    n_rounds = plan.n_rounds

    # 1. coarse CFO from the AP's dedicated block (6.4 us baseline)
    block_start = plan.cfo_block_start(ap) + 2 * CP_LENGTH
    block = samples[block_start : block_start + 2 * FFT_SIZE]
    coarse_cfo = estimate_cfo_fine(block, plan.sample_rate)

    # 2. raw per-round channel estimates.  The client "uses its knowledge of
    #    the transmitted symbols and the CFO to compute the channel" (§5.1b):
    #    de-rotating each window by the coarse CFO (anchored at the window
    #    center so the estimate's phase epoch is unchanged) removes the
    #    intra-window rotation that would otherwise leak ICI into the bins.
    raw = []
    centered = np.arange(FFT_SIZE) - (FFT_SIZE - 1) / 2.0
    for r in range(n_rounds):
        s = plan.slot_start(ap, r) + CP_LENGTH
        window = samples[s : s + FFT_SIZE] * np.exp(
            -2j * np.pi * coarse_cfo * centered / plan.sample_rate
        )
        raw.append(estimate_channel_lts(window))
    raw = np.stack(raw)  # (n_rounds, 64)

    # 3. refine CFO from round-to-round rotation (long baseline); the
    #    coarse estimate resolves the wrap ambiguity of the fine one
    round_period_s = plan.round_period_samples / plan.sample_rate
    if n_rounds > 1:
        inner = np.sum(raw[1:] * np.conj(raw[:-1]))
        expected_phase = 2.0 * np.pi * coarse_cfo * round_period_s
        measured = np.angle(inner * np.exp(-1j * expected_phase))
        cfo = coarse_cfo + measured / (2.0 * np.pi * round_period_s)
    else:
        cfo = coarse_cfo

    # 4. de-rotate each round's estimate to the reference time & average
    derotated = np.empty_like(raw)
    for r in range(n_rounds):
        elapsed = (
            plan.slot_center_offset(ap, r) - REFERENCE_OFFSET
        ) / plan.sample_rate
        derotated[r] = raw[r] * np.exp(-2j * np.pi * cfo * elapsed)
    channel = derotated.mean(axis=0)

    # 5. dispersion of the de-rotated estimates -> noise estimate
    residual_var = 0.0
    occupied = np.abs(channel) > 0
    if n_rounds > 1 and np.any(occupied):
        dev = derotated[:, occupied] - channel[occupied][None, :]
        residual_var = float(np.mean(np.abs(dev) ** 2))
    return channel, float(cfo), residual_var


def estimate_at_client(
    samples: np.ndarray,
    plan: SoundingPlan,
) -> ClientSoundingEstimate:
    """Client-side sounding processing (§5.1b).

    Args:
        samples: Received stream aligned so index 0 is the sync header start.
        plan: The sounding frame geometry.

    Returns:
        Channel estimates per AP, de-rotated to the common reference time.
    """
    n_aps = plan.n_aps
    channels = np.zeros((n_aps, FFT_SIZE), dtype=complex)
    cfos = np.zeros(n_aps)
    residual_vars = []
    for ap in range(n_aps):
        channel, cfo, residual = estimate_single_ap(samples, plan, ap)
        channels[ap] = channel
        cfos[ap] = cfo
        if residual > 0:
            residual_vars.append(residual)
    # per-round estimate variance equals the per-bin noise power (unit-power
    # LTS bins), so the dispersion estimates the channel's noise floor
    noise_power = float(np.mean(residual_vars)) if residual_vars else 0.0
    return ClientSoundingEstimate(channels=channels, cfos_hz=cfos, noise_power=noise_power)
