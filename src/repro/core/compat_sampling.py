"""Sample-level §6 sounding: stitched 2-stream packets for stock clients.

The interleaved sounding of §5.1 needs a custom packet format that
off-the-shelf 802.11n cards cannot receive.  §6.2's alternative works with
stock cards: every sounding is an ordinary 2-stream packet pairing the
lead's **reference antenna** with one other antenna; inter-packet
oscillator drift is cancelled by ratios of repeated reference-antenna
measurements (client side) and of the lead preamble (slave side).

``SampleLevelCompatSounder`` runs that schedule on a real
:class:`~repro.core.system.MegaMimoSystem` medium — legacy sync header
from the reference antenna (§6.1: the mixed-mode legacy symbols double as
the sync header), then a 2-stream HT-LTF — and installs the stitched
snapshot into the system so ``joint_transmit`` works exactly as after
§5.1 sounding.  The narrowband model in :mod:`repro.core.compat80211n`
proves the math; this module proves the waveforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.sounding import REFERENCE_OFFSET
from repro.core.system import MegaMimoSystem
from repro.phy.channel_est import channel_rotation
from repro.phy.htltf import HTLTF_LENGTH, estimate_two_streams, htltf_waveforms
from repro.phy.preamble import lts_grid, sync_header, sync_header_length
from repro.utils.validation import require


@dataclass
class CompatSoundingReport:
    """Bookkeeping from one §6 sounding run.

    Attributes:
        reference_time: The packet-0 phase epoch all estimates refer to.
        packet_times: Header start time per sounding packet.
        n_packets: One per non-reference antenna.
    """

    reference_time: float
    packet_times: List[float]

    @property
    def n_packets(self) -> int:
        return len(self.packet_times)


class SampleLevelCompatSounder:
    """Run the §6.2 measurement schedule on a sample-level system."""

    def __init__(self, system: MegaMimoSystem):
        require(
            len(system.antenna_ids) >= 2,
            "need at least the reference antenna plus one more",
        )
        self.system = system
        self.reference_antenna = system.lead_antenna

    def measure(
        self,
        start_time: float = 0.0,
        packet_spacing_s: float = 2e-3,
        warmup_headers: int = 2,
    ) -> CompatSoundingReport:
        """Sound every antenna via 2-stream packets; install the snapshot.

        After this returns, ``system._channel_tensor``, the slaves'
        reference channels and the CFO trackers are set up exactly as
        ``run_sounding`` would have left them, so joint transmissions can
        follow immediately.

        Args:
            warmup_headers: Plain legacy frames the lead sends after the
                measurement packets.  The §5.1 interleaved frame hands
                slaves a long CFO baseline for free; the stock-format path
                has only one 2-stream packet per antenna, so a couple of
                ordinary lead transmissions let the slaves' long-term CFO
                averages converge before the first joint data packet
                (§5.2b's "across multiple transmissions").
        """
        system = self.system
        medium = system.medium
        fs = system.config.sample_rate
        header = sync_header()
        header_len = sync_header_length()
        ltf = htltf_waveforms()
        others = [a for a in system.antenna_ids if a != self.reference_antenna]
        rx_nodes = system.client_antenna_ids

        n_rows = len(rx_nodes)
        n_cols = len(system.antenna_ids)
        ref_col = system.antenna_ids.index(self.reference_antenna)

        medium.clear()
        packet_times: List[float] = []
        # per packet: client-side estimates of (L1, partner); slave-side
        # rotations of the lead channel vs. packet 0
        lead_est: List[Dict[str, np.ndarray]] = []
        partner_est: List[Dict[str, np.ndarray]] = []
        slave_rotation: List[Dict[str, complex]] = []

        t0_ref = None
        for k, partner in enumerate(others):
            t = round((start_time + k * packet_spacing_s) * fs) / fs
            packet_times.append(t)
            # legacy preamble (sync header) from the reference antenna, then
            # the 2-stream HT-LTF from (reference, partner)
            medium.transmit(self.reference_antenna, header, t)
            ltf_start = t + header_len / fs
            medium.transmit(self.reference_antenna, ltf[0], ltf_start)
            medium.transmit(partner, ltf[1], ltf_start)

            header_time = t + REFERENCE_OFFSET / fs
            if k == 0:
                t0_ref = header_time

            # every slave device logs the lead preamble (§6.1)
            rotations: Dict[str, complex] = {}
            for ap in system.ap_ids[1:]:
                listen = system.listen_antenna[ap]
                rx = medium.receive(listen, t, header_len)
                sync = system.synchronizers[ap]
                if k == 0:
                    sync.set_reference(rx, header_time)
                    rotations[ap] = 1.0 + 0j
                else:
                    obs = sync.observe_header(rx, header_time)
                    rotations[ap] = obs.rotation
            slave_rotation.append(rotations)

            # each client antenna measures both streams
            le: Dict[str, np.ndarray] = {}
            pe: Dict[str, np.ndarray] = {}
            ltf_off = header_len
            for rx_node in rx_nodes:
                capture = medium.receive(rx_node, t, header_len + HTLTF_LENGTH)
                h_ref, h_partner = estimate_two_streams(capture[ltf_off:])
                le[rx_node] = h_ref
                pe[rx_node] = h_partner
            lead_est.append(le)
            partner_est.append(pe)
            medium.clear()

        # ---- stitch (§6.2) -------------------------------------------------
        tensor = np.zeros((64, n_rows, n_cols), dtype=complex)
        for ri, rx_node in enumerate(rx_nodes):
            tensor[:, ri, ref_col] = lead_est[0][rx_node]
        first_partner_col = system.antenna_ids.index(others[0])
        for ri, rx_node in enumerate(rx_nodes):
            tensor[:, ri, first_partner_col] = partner_est[0][rx_node]

        for k in range(1, len(others)):
            partner = others[k]
            col = system.antenna_ids.index(partner)
            device = system.antenna_device[col]
            ap = system.ap_ids[device]
            for ri, rx_node in enumerate(rx_nodes):
                # accumulated lead<->client offset over [t0, tk]
                lr = channel_rotation(lead_est[0][rx_node], lead_est[k][rx_node])
                if device == 0:
                    offset = lr  # lead-owned antenna shares the lead clock
                else:
                    ls = slave_rotation[k][ap]
                    offset = lr * np.conj(ls)
                tensor[:, ri, col] = partner_est[k][rx_node] * np.conj(offset)

        # ---- slave CFO warm-up -----------------------------------------------
        t_warm = packet_times[-1] + packet_spacing_s
        for _ in range(warmup_headers):
            t_warm = round(t_warm * fs) / fs
            medium.transmit(self.reference_antenna, header, t_warm)
            for ap in system.ap_ids[1:]:
                rx = medium.receive(system.listen_antenna[ap], t_warm, header_len)
                system.synchronizers[ap].observe_header(
                    rx, t_warm + REFERENCE_OFFSET / fs
                )
            medium.clear()
            t_warm += packet_spacing_s

        # ---- epoch alignment -------------------------------------------------
        # The stitched estimates carry the oscillator phases of the packet-0
        # HT-LTF midpoint, but the slaves' reference channels (and hence
        # their data-time corrections) anchor at the packet-0 *header*
        # midpoint, ~19 us earlier.  Left uncorrected, each slave column
        # keeps a constant 2*pi*(f_S - f_L)*delta phase error (~0.3 rad at
        # kHz offsets) that beamforming would pay for on every packet.
        # Shift every slave's reference to the LTF epoch using its (by now
        # converged) CFO estimate.
        from repro.constants import CP_LENGTH, FFT_SIZE

        ltf_center = header_len + 2 * CP_LENGTH + FFT_SIZE  # samples from header start
        delta_s = (ltf_center - REFERENCE_OFFSET) / fs
        for ap in system.ap_ids[1:]:
            sync = system.synchronizers[ap]
            cfo = sync.cfo_tracker.estimate_hz or 0.0
            sync.reference.estimate = sync.reference.estimate * np.exp(
                2j * np.pi * cfo * delta_s
            )
            sync.reference.reference_time += delta_s

        system._channel_tensor = tensor
        system.reference_time = t0_ref + delta_s
        system.sounding_result = None  # the §6 path bypasses SoundingResult
        # seed per-slave sounding CFOs for the 'naive' ablation strategy
        for ap in system.ap_ids[1:]:
            system._sounding_cfos[ap] = (
                system.synchronizers[ap].cfo_tracker.estimate_hz or 0.0
            )
        return CompatSoundingReport(
            reference_time=t0_ref, packet_times=packet_times
        )


def stitched_vs_genie_phase_error(system: MegaMimoSystem) -> np.ndarray:
    """Per-entry phase error of the installed snapshot vs. genie channels.

    Relative to the reference-antenna column (receivers can never observe
    their own oscillator's absolute phase), averaged over occupied bins.
    """
    require(system._channel_tensor is not None, "no snapshot installed")
    occupied = np.abs(lts_grid()) > 0
    tref = system.reference_time
    n_rows = len(system.client_antenna_ids)
    n_cols = len(system.antenna_ids)

    genie = np.zeros((n_rows, n_cols), dtype=complex)
    for ri, rx_node in enumerate(system.client_antenna_ids):
        rx_osc = system.medium.oscillator(rx_node)
        for ci, antenna in enumerate(system.antenna_ids):
            link = system.medium.get_link(antenna, rx_node)
            tx_osc = system.medium.oscillator(antenna)
            rot = np.exp(
                1j * (tx_osc.phase_at([tref])[0] - rx_osc.phase_at([tref])[0])
            )
            genie[ri, ci] = link.taps[0] * rot

    measured = np.array(
        [
            [
                np.mean(system._channel_tensor[occupied, ri, ci])
                for ci in range(n_cols)
            ]
            for ri in range(n_rows)
        ]
    )
    errors = np.zeros((n_rows, n_cols))
    from repro.utils.units import wrap_phase

    for ri in range(n_rows):
        rel_meas = np.angle(measured[ri] / measured[ri, 0])
        rel_genie = np.angle(genie[ri] / genie[ri, 0])
        errors[ri] = np.abs(wrap_phase(rel_meas - rel_genie))
    return errors
