"""Narrowband (flat-fading, frequency-domain) network abstraction.

The §6 (802.11n compatibility) and §7 (decoupled measurement) protocols are
about *bookkeeping of oscillator phases across measurements taken at
different times*.  Their math is per-subcarrier, so this module provides a
minimal frequency-domain world: nodes with free-running oscillators, static
complex channels between antennas, and noisy channel *observations* that
include the instantaneous relative oscillator rotation — exactly what a
receiver's channel estimator returns.

The full sample-level machinery in :mod:`repro.core.system` validates that
this abstraction matches reality; these modules use it for clarity and
speed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.utils.rng import complex_normal, ensure_rng
from repro.utils.units import db_to_linear
from repro.utils.validation import require


class NarrowbandNetwork:
    """Antennas, oscillators and flat channels, observed with noise.

    Antennas belong to *devices*; all antennas of a device share its
    oscillator (they are "driven by the same clock"), which is what makes a
    single AP's multi-antenna beamforming trivially phase-coherent and the
    multi-AP case the hard problem.
    """

    def __init__(self, rng=None):
        self._rng = ensure_rng(rng)
        self._oscillators: Dict[str, Oscillator] = {}
        self._antenna_device: Dict[str, str] = {}
        self._channels: Dict[Tuple[str, str], complex] = {}

    # -- construction -------------------------------------------------------

    def add_device(
        self,
        device: str,
        antennas,
        oscillator: Oscillator = None,
        max_ppm: float = 2.0,
        phase_noise_rad2_per_s: float = 0.25,
    ) -> None:
        """Add a device with its antennas and a (possibly random) oscillator."""
        require(device not in self._oscillators, f"duplicate device {device!r}")
        if oscillator is None:
            oscillator = Oscillator(
                OscillatorConfig(
                    ppm_offset=float(self._rng.uniform(-max_ppm, max_ppm)),
                    phase_noise_rad2_per_s=phase_noise_rad2_per_s,
                    initial_phase=float(self._rng.uniform(-np.pi, np.pi)),
                ),
                rng=self._rng,
            )
        self._oscillators[device] = oscillator
        for antenna in antennas:
            require(
                antenna not in self._antenna_device, f"duplicate antenna {antenna!r}"
            )
            self._antenna_device[antenna] = device

    def set_channel(self, tx_antenna: str, rx_antenna: str, value: complex) -> None:
        """Define the static channel between two antennas."""
        self._channels[(tx_antenna, rx_antenna)] = complex(value)

    def randomize_channels(self, tx_antennas, rx_antennas, average_gain: float = 1.0):
        """Draw i.i.d. Rayleigh channels for every tx/rx antenna pair."""
        for tx in tx_antennas:
            for rx in rx_antennas:
                self.set_channel(
                    tx, rx, complex(complex_normal(self._rng, (), np.sqrt(average_gain)))
                )

    # -- physics -------------------------------------------------------------

    def device_of(self, antenna: str) -> str:
        return self._antenna_device[antenna]

    def oscillator_of_device(self, device: str) -> Oscillator:
        return self._oscillators[device]

    def true_channel(self, tx_antenna: str, rx_antenna: str, t: float) -> complex:
        """Channel including the relative oscillator rotation at time ``t``."""
        h = self._channels[(tx_antenna, rx_antenna)]
        tx_osc = self._oscillators[self._antenna_device[tx_antenna]]
        rx_osc = self._oscillators[self._antenna_device[rx_antenna]]
        rotation = np.exp(
            1j * (tx_osc.phase_at([t])[0] - rx_osc.phase_at([t])[0])
        )
        return h * rotation

    def observe(
        self,
        tx_antenna: str,
        rx_antenna: str,
        t: float,
        snr_db: Optional[float] = 30.0,
    ) -> complex:
        """A noisy channel estimate, as a receiver's estimator would return.

        Args:
            snr_db: Estimation SNR; None for a noiseless (genie) observation.
        """
        value = self.true_channel(tx_antenna, rx_antenna, t)
        if snr_db is None:
            return value
        noise_scale = abs(value) / np.sqrt(db_to_linear(snr_db))
        return value + complex(complex_normal(self._rng, (), noise_scale))
