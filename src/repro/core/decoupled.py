"""Decoupled per-receiver channel measurement (§7 and the appendix).

When a new client joins, MegaMIMO must not re-measure every other client:
measurements to different receivers may happen at different times t_1, t_2,
..., with **the lead->slave channels serving as the shared reference**
across those times.  The appendix shows the resulting channel decomposes as
``H(t) = R(t) H_bar T(t)`` where the time-invariant matrix (Eq. 8) carries a
correction on each slave column of each later-measured row:

    h_bar[r, i] = h[r, i](t_r) * exp(-j (w_T1 - w_Ti)(t_r - t_1))

and slave i computes ``exp(j (w_T1 - w_Ti)(t_r - t_1))`` purely from its own
lead-channel observations at t_1 and t_r — no client involvement.  At
transmission time every slave corrects relative to t_1 as usual, and each
receiver sees a clean diagonal effective channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.beamforming import zero_forcing_precoder
from repro.core.narrowband import NarrowbandNetwork
from repro.utils.validation import require


@dataclass
class _ClientRecord:
    time: float
    row: np.ndarray  # (n_aps,) channel estimates taken at `time`


class DecoupledChannelBook:
    """Maintains decoupled per-client measurements and builds H-bar.

    Args:
        network: Narrowband world with one antenna per AP.
        ap_antennas: AP antenna names; index 0 is the lead.
        client_snr_db: Client-side estimation SNR (None = noiseless).
        ap_snr_db: Slave-side estimation SNR for lead observations.
    """

    def __init__(
        self,
        network: NarrowbandNetwork,
        ap_antennas: Sequence[str],
        client_snr_db: Optional[float] = 25.0,
        ap_snr_db: Optional[float] = 30.0,
    ):
        require(len(ap_antennas) >= 2, "need a lead and at least one slave")
        self.network = network
        self.ap_antennas = list(ap_antennas)
        self.lead = self.ap_antennas[0]
        self.client_snr_db = client_snr_db
        self.ap_snr_db = ap_snr_db
        self._clients: Dict[str, _ClientRecord] = {}
        self._client_order: List[str] = []
        #: slave antenna -> {measurement time -> lead observation}
        self._lead_refs: Dict[str, Dict[float, complex]] = {
            a: {} for a in self.ap_antennas[1:]
        }

    @property
    def first_measurement_time(self) -> Optional[float]:
        if not self._client_order:
            return None
        return self._clients[self._client_order[0]].time

    # -- measurement ---------------------------------------------------------

    def record_measurement(self, client_antenna: str, t: float) -> None:
        """Measure one client's channels from all APs at time ``t``.

        The lead's sync header also lets every slave log its lead-channel
        observation at ``t`` — the shared reference for later correction.
        """
        row = np.array(
            [
                self.network.observe(ap, client_antenna, t, self.client_snr_db)
                for ap in self.ap_antennas
            ]
        )
        if client_antenna not in self._clients:
            self._client_order.append(client_antenna)
        self._clients[client_antenna] = _ClientRecord(time=float(t), row=row)
        for slave in self.ap_antennas[1:]:
            self._lead_refs[slave][float(t)] = self.network.observe(
                self.lead, slave, t, self.ap_snr_db
            )

    # -- reference rotations ---------------------------------------------------

    def slave_rotation(self, slave_antenna: str, t_from: float, t_to: float) -> complex:
        """``exp(j (w_T1 - w_Ti)(t_to - t_from))`` from stored lead observations.

        Raises KeyError if the slave has no observation at either time.
        """
        refs = self._lead_refs[slave_antenna]
        a, b = refs[float(t_from)], refs[float(t_to)]
        inner = b * np.conj(a)
        magnitude = abs(inner)
        require(magnitude > 1e-15, "degenerate lead reference observation")
        return inner / magnitude

    # -- the time-invariant matrix (appendix Eq. 8) ----------------------------

    def time_invariant_matrix(self) -> np.ndarray:
        """H-bar over the recorded clients, rows in measurement order."""
        require(self._client_order, "no measurements recorded")
        t1 = self.first_measurement_time
        rows = []
        for client in self._client_order:
            record = self._clients[client]
            row = record.row.copy()
            if record.time != t1:
                for i, slave in enumerate(self.ap_antennas[1:], start=1):
                    # Rotate the slave's entry back to the t1 oscillator
                    # epoch.  The drift of oscillator i over [t1, t_r]
                    # decomposes into the lead's own drift (common to the
                    # whole row, absorbed by the receiver) minus the
                    # measurable lead-slave rotation, so multiplying by that
                    # rotation is exactly the appendix's Eq. 8 correction
                    # (written there with the opposite channel-phase sign
                    # convention as e^{-j(w_T1 - w_Ti)(t_2 - t_1)}).
                    rotation = self.slave_rotation(slave, t1, record.time)
                    row[i] = row[i] * rotation
            rows.append(row)
        return np.stack(rows)

    def naive_matrix(self) -> np.ndarray:
        """Rows taken verbatim at their own measurement times (no correction).

        The §7 strawman: without the shared lead reference the rows refer to
        different oscillator epochs and beamforming from this matrix leaks
        interference.  Used by tests and the ablation bench.
        """
        require(self._client_order, "no measurements recorded")
        return np.stack([self._clients[c].row for c in self._client_order])

    # -- transmission-time verification ---------------------------------------

    def slave_correction_at(self, slave_antenna: str, t: float) -> complex:
        """The slave's transmit correction for a transmission at time ``t``.

        The slave observes the lead sync header at ``t`` (a fresh
        observation) and references it to t_1, exactly like §5.2b.
        """
        t1 = self.first_measurement_time
        current = self.network.observe(self.lead, slave_antenna, t, self.ap_snr_db)
        reference = self._lead_refs[slave_antenna][float(t1)]
        inner = current * np.conj(reference)
        magnitude = abs(inner)
        require(magnitude > 1e-15, "degenerate observation")
        return inner / magnitude

    def effective_channel_at(
        self, t: float, matrix: np.ndarray = None
    ) -> np.ndarray:
        """Effective channel H(t) diag(corrections) W at transmission time.

        Builds the ZF precoder from ``matrix`` (H-bar by default), applies
        each slave's §5.2b correction, and returns what the clients see.
        With the corrected H-bar this is diagonal up to estimation noise;
        with :meth:`naive_matrix` it is visibly not.
        """
        h_bar = self.time_invariant_matrix() if matrix is None else matrix
        precoder, _ = zero_forcing_precoder(h_bar)
        corrections = np.ones(len(self.ap_antennas), dtype=complex)
        for i, slave in enumerate(self.ap_antennas[1:], start=1):
            corrections[i] = self.slave_correction_at(slave, t)
        true_h = np.empty_like(h_bar)
        for ri, client in enumerate(self._client_order):
            for ci, ap in enumerate(self.ap_antennas):
                true_h[ri, ci] = self.network.true_channel(ap, client, t)
        return (true_h * corrections[None, :]) @ precoder

    def interference_leakage_db(self, t: float, matrix: np.ndarray = None) -> float:
        """Off-diagonal-to-diagonal power ratio (dB) of the effective channel."""
        eff = self.effective_channel_at(t, matrix)
        diag = np.sum(np.abs(np.diag(eff)) ** 2)
        off = np.sum(np.abs(eff) ** 2) - diag
        return float(10.0 * np.log10(max(off, 1e-30) / diag))
