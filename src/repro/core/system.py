"""End-to-end MegaMIMO system: sounding + joint transmission, sample level.

``MegaMimoSystem`` wires APs, clients, oscillators and links onto a shared
:class:`~repro.channel.medium.Medium` and runs the paper's protocol exactly
as §5 describes it:

1. **Sounding** (`run_sounding`): the lead emits the sync header, every AP
   transmits CFO blocks and interleaved channel-measurement symbols, clients
   estimate per-AP channels rotated to the common reference time and feed
   them back (modelled as an ideal control channel, like the paper's wired
   backend + wireless feedback), and each slave captures its reference
   channel h_lead(0).
2. **Joint transmission** (`joint_transmit`): the lead emits a sync header;
   slaves re-measure their phase offset and correct their precoded samples;
   all APs transmit the zero-forcing-beamformed frame simultaneously; each
   client CFO-locks to the lead, estimates its effective channel from the
   beamformed LTS and decodes its own stream.

Alternative slave synchronization strategies are selectable for ablations:
``"megamimo"`` (the paper's design), ``"megamimo-no-tracking"`` (no
within-packet CFO ramp), ``"naive"`` (pure CFO extrapolation from sounding
time — the §5.2b strawman), ``"none"`` and ``"oracle"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.medium import Medium
from repro.channel.models import ChannelModel, FlatRayleighChannel
from repro.channel.oscillator import Oscillator, OscillatorConfig
from repro.constants import CP_LENGTH, FFT_SIZE, SAMPLE_RATE_USRP, SYMBOL_LENGTH
from repro.core.beamforming import diversity_precoder, zero_forcing_precoder
from repro.core.phasesync import PhaseSynchronizer, SyncObservation
from repro.core.sounding import (
    REFERENCE_OFFSET,
    SoundingPlan,
    SoundingResult,
    estimate_at_client,
    estimate_single_ap,
    interleaved_sounding_frame,
)
from repro.obs import metrics, trace
from repro.phy.cfo import apply_cfo, combine_cfo, estimate_cfo_coarse, estimate_cfo_fine
from repro.phy.channel_est import average_channel_estimates, estimate_channel_lts
from repro.phy.frame import DecodedFrame, FrameConfig, PhyFrameDecoder, PhyFrameEncoder
from repro.phy.mcs import Mcs
from repro.phy.ofdm import OfdmDemodulator, OfdmModulator
from repro.phy.preamble import lts_grid, lts_symbol_offsets, sync_header, sync_header_length
from repro.radio.frontend import RadioFrontend
from repro.radio.timing import TimingConfig, TriggerTimer
from repro.utils.rng import ensure_rng
from repro.utils.units import db_to_linear, linear_to_db, wrap_phase
from repro.utils.validation import require

#: Average |sample|^2 of an OFDM symbol with unit-power constellation points
#: (52 occupied of 64 bins).  Used to calibrate link gains to target SNRs.
OFDM_SIGNAL_POWER = 52.0 / 64.0

_SYNC_STRATEGIES = ("megamimo", "megamimo-no-tracking", "naive", "none", "oracle")


@dataclass
class SystemConfig:
    """Configuration of a sample-level MegaMIMO deployment.

    Attributes:
        n_aps: Number of AP devices (AP 0 is the lead).
        n_clients: Number of single-antenna clients.
        antennas_per_ap: Antennas per AP device.  Antennas of one device
            share its oscillator ("connected via an external clock", §10b),
            so an N-device, M-antenna system delivers N*M streams while
            only N-1 phase synchronizations are needed.
        antennas_per_client: Antennas per client device.  Under full
            zero-forcing each client antenna is an independent stream
            endpoint (its card decodes each antenna's stream separately),
            which is how two 2-antenna APs serve two 2-antenna 802.11n
            clients with 4 streams (§10b, Fig. 12).
        sample_rate: Channel sample rate (10 MHz USRP testbed default).
        noise_power: Receiver noise power per complex sample.
        ap_ap_snr_db: SNR of the lead->slave links (APs are infrastructure
            mounted with line of sight to each other, so this is high).
        sounding_rounds: Interleaved repetitions in the sounding frame.
        max_ppm: Oscillator tolerance; offsets are drawn uniformly within
            +-max_ppm (2 ppm ~ USRP-class crystals; 20 ppm = 802.11 limit).
        phase_noise_rad2_per_s: Oscillator Wiener phase-noise intensity.
        sync_strategy: Slave phase-correction strategy (see module docs).
        model_sfo: Apply DAC sampling-clock skew on transmit.
        use_detection: Locate packets via STS/LTS detection instead of
            genie timing (realistic receive path; slightly slower).
        in_band_feedback: Clients transmit their CSI reports as real PHY
            frames that the lead AP decodes (quantized, CRC-checked),
            instead of the ideal control-plane hand-off.  A report that
            fails its CRC falls back to the ideal estimate and increments
            ``feedback_failures`` (§5.1b: receivers "communicate these
            estimated channels back ... over the wireless channel").
        mixed_mode: §6.1 timing — slaves join immediately after the lead's
            legacy preamble (hardware-speed turnaround) instead of waiting
            the USRP implementation's 150 us software turnaround.  Shorter
            header-to-data gaps also shrink the CFO-extrapolation window.
        timing: Trigger-timing parameters (turnaround + jitter).
        seed: Master seed for all randomness.
    """

    n_aps: int
    n_clients: int
    antennas_per_ap: int = 1
    antennas_per_client: int = 1
    sample_rate: float = SAMPLE_RATE_USRP
    noise_power: float = 1.0
    ap_ap_snr_db: float = 30.0
    sounding_rounds: int = 4
    max_ppm: float = 2.0
    phase_noise_rad2_per_s: float = 0.25
    sync_strategy: str = "megamimo"
    model_sfo: bool = True
    use_detection: bool = False
    in_band_feedback: bool = False
    mixed_mode: bool = False
    timing: Optional[TimingConfig] = None
    seed: Optional[int] = None

    def __post_init__(self):
        require(self.n_aps >= 1, "need at least one AP")
        require(self.n_clients >= 1, "need at least one client")
        require(self.antennas_per_ap >= 1, "need at least one antenna per AP")
        require(
            self.antennas_per_client >= 1, "need at least one antenna per client"
        )
        require(
            self.sync_strategy in _SYNC_STRATEGIES,
            f"sync_strategy must be one of {_SYNC_STRATEGIES}",
        )


@dataclass
class ClientReception:
    """One client's view of a joint transmission.

    Attributes:
        decoded: PHY decode result (None payload if CRC failed).
        effective_snr_db: Post-equalization SNR estimated from pilots.
        evm_db: Error-vector magnitude of the equalized data symbols.
    """

    decoded: Optional[DecodedFrame]
    effective_snr_db: float
    evm_db: float


@dataclass
class JointTransmissionReport:
    """Outcome of one joint beamformed frame.

    Attributes:
        receptions: Per-client reception results (client order).
        misalignment_rad: Genie-measured slave phase error at the joint
            transmission start (slave id -> radians); empty for the lead.
        joint_start_time: Absolute start time of the beamformed part.
        precoder_gain: The per-bin diagonal gains k (mean across bins).
    """

    receptions: List[ClientReception]
    misalignment_rad: Dict[str, float]
    joint_start_time: float
    precoder_gain: float


class MegaMimoSystem:
    """A sample-level distributed-MIMO deployment on a simulated medium."""

    def __init__(self, config: SystemConfig, medium: Medium,
                 frontends: Dict[str, RadioFrontend], rng=None):
        self.config = config
        self.medium = medium
        self.frontends = frontends
        self._rng = ensure_rng(rng)
        self.ap_ids = [f"ap{i}" for i in range(config.n_aps)]
        self.client_ids = [f"client{i}" for i in range(config.n_clients)]
        self.lead_id = self.ap_ids[0]
        # antenna node ids; with one antenna per AP they equal the device ids
        if config.antennas_per_ap == 1:
            self.antenna_ids = list(self.ap_ids)
            self.antenna_device = list(range(config.n_aps))
        else:
            self.antenna_ids = [
                f"ap{i}.{j}"
                for i in range(config.n_aps)
                for j in range(config.antennas_per_ap)
            ]
            self.antenna_device = [
                i
                for i in range(config.n_aps)
                for _ in range(config.antennas_per_ap)
            ]
        self.lead_antenna = self.antenna_ids[0]
        #: the antenna node each slave device listens to the lead with
        self.listen_antenna = {
            self.ap_ids[d]: self.antenna_ids[d * config.antennas_per_ap]
            for d in range(config.n_aps)
        }
        # client antennas: each is an independent stream endpoint
        if config.antennas_per_client == 1:
            self.client_antenna_ids = list(self.client_ids)
            self.client_antenna_device = list(range(config.n_clients))
        else:
            self.client_antenna_ids = [
                f"client{i}.{j}"
                for i in range(config.n_clients)
                for j in range(config.antennas_per_client)
            ]
            self.client_antenna_device = [
                i
                for i in range(config.n_clients)
                for _ in range(config.antennas_per_client)
            ]
        self.timer = TriggerTimer(config.timing, rng=self._rng)
        self.synchronizers: Dict[str, PhaseSynchronizer] = {
            ap: PhaseSynchronizer(config.sample_rate) for ap in self.ap_ids[1:]
        }
        self._modulator = OfdmModulator()
        self._demodulator = OfdmDemodulator()
        self._frame_config = FrameConfig(sample_rate=config.sample_rate)
        self._encoder = PhyFrameEncoder(self._frame_config)
        self._decoder = PhyFrameDecoder(self._frame_config)
        self.sounding_result: Optional[SoundingResult] = None
        self._channel_tensor: Optional[np.ndarray] = None  # (64, n_client_antennas, n_tx_antennas)
        self._client_noise: Optional[np.ndarray] = None
        self.reference_time: Optional[float] = None
        self._sounding_cfos: Dict[str, float] = {}
        #: genie-fallback count when packet detection misses a header
        self.detection_failures = 0
        #: ideal-fallback count when an in-band CSI report fails its CRC
        self.feedback_failures = 0
        # telemetry handles (cached once per system)
        self._obs_snr = metrics.histogram("system.effective_snr_db")
        self._obs_evm = metrics.histogram("system.evm_db")
        self._obs_misalign = metrics.histogram("system.misalignment_rad")
        self._obs_decode_ok = metrics.counter("system.decode_ok")
        self._obs_decode_fail = metrics.counter("system.decode_fail")

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        config: SystemConfig,
        client_snr_db,
        channel_model: ChannelModel = None,
        ap_channel_model: ChannelModel = None,
    ) -> "MegaMimoSystem":
        """Build a system with links calibrated to target direct-link SNRs.

        Args:
            config: Deployment configuration.
            client_snr_db: Target average SNR from each AP to each client —
                a scalar, a per-client vector, or an (n_clients, n_aps)
                matrix in dB.
            channel_model: Small-scale fading model for AP-client links
                (flat Rayleigh default).
            ap_channel_model: Fading model for the lead->slave links.  APs
                are ceiling-mounted infrastructure with line of sight to
                each other, so the default is strongly Rician (K = 10).
        """
        from repro.channel.models import RicianChannel

        rng = ensure_rng(config.seed)
        medium = Medium(config.sample_rate, noise_power=config.noise_power, rng=rng)
        model = channel_model or FlatRayleighChannel()
        ap_model = ap_channel_model or RicianChannel(k_factor=10.0)

        snr = np.asarray(client_snr_db, dtype=float)
        if snr.ndim == 0:
            snr = np.full((config.n_clients, config.n_aps), float(snr))
        elif snr.ndim == 1:
            require(snr.size == config.n_clients, "need one SNR per client")
            snr = np.tile(snr[:, None], (1, config.n_aps))
        require(
            snr.shape == (config.n_clients, config.n_aps),
            "client_snr_db must be scalar, (n_clients,) or (n_clients, n_aps)",
        )

        m = config.antennas_per_ap
        if m == 1:
            antenna_ids = [f"ap{i}" for i in range(config.n_aps)]
        else:
            antenna_ids = [
                f"ap{i}.{j}" for i in range(config.n_aps) for j in range(m)
            ]
        mc = config.antennas_per_client
        if mc == 1:
            client_antenna_ids = [f"client{i}" for i in range(config.n_clients)]
        else:
            client_antenna_ids = [
                f"client{i}.{j}" for i in range(config.n_clients) for j in range(mc)
            ]
        frontends: Dict[str, RadioFrontend] = {}

        def fresh_oscillator():
            return Oscillator(
                OscillatorConfig(
                    ppm_offset=float(rng.uniform(-config.max_ppm, config.max_ppm)),
                    phase_noise_rad2_per_s=config.phase_noise_rad2_per_s,
                    initial_phase=float(rng.uniform(-np.pi, np.pi)),
                ),
                rng=rng,
            )

        # one oscillator per AP *device*, shared by all its antennas
        for d in range(config.n_aps):
            osc = fresh_oscillator()
            for node in antenna_ids[d * m : (d + 1) * m]:
                medium.register_node(node, osc)
                frontends[node] = RadioFrontend(
                    node_id=node, oscillator=osc, model_sfo=config.model_sfo
                )
        for d in range(config.n_clients):
            osc = fresh_oscillator()
            for node in client_antenna_ids[d * mc : (d + 1) * mc]:
                medium.register_node(node, osc)
                frontends[node] = RadioFrontend(
                    node_id=node, oscillator=osc, model_sfo=config.model_sfo
                )

        # antenna -> client-antenna links at the target SNRs (per-device
        # target, independent fading per antenna pair)
        for ci, client_antenna in enumerate(client_antenna_ids):
            client_device = ci // mc
            for ai, antenna in enumerate(antenna_ids):
                device = ai // m
                gain = (
                    db_to_linear(snr[client_device, device])
                    * config.noise_power
                    / OFDM_SIGNAL_POWER
                )
                link = model.realize(float(gain), rng=rng)
                medium.set_link(antenna, client_antenna, link)
                # channel reciprocity: the uplink (CSI feedback) sees the
                # same propagation
                medium.set_link(client_antenna, antenna, link)

        # lead antenna -> each slave device's listening antenna
        lead_gain = db_to_linear(config.ap_ap_snr_db) * config.noise_power / OFDM_SIGNAL_POWER
        for d in range(1, config.n_aps):
            medium.set_link(
                antenna_ids[0],
                antenna_ids[d * m],
                ap_model.realize(float(lead_gain), rng=rng),
            )

        return cls(config, medium, frontends, rng=rng)

    # ------------------------------------------------------------------
    # sounding phase (§5.1)
    # ------------------------------------------------------------------

    def run_sounding(self, start_time: float = 0.0) -> SoundingResult:
        """Run the channel-measurement phase; stores the channel snapshot."""
        with trace.span("sounding", t=start_time):
            result = self._run_sounding(start_time)
        metrics.counter("system.soundings").inc()
        return result

    def _run_sounding(self, start_time: float) -> SoundingResult:
        cfg = self.config
        plan = SoundingPlan(
            n_aps=len(self.antenna_ids),
            n_rounds=cfg.sounding_rounds,
            sample_rate=cfg.sample_rate,
        )
        self.medium.clear()
        for i, antenna in enumerate(self.antenna_ids):
            frame = interleaved_sounding_frame(plan, i)
            frame = self.frontends[antenna].prepare_transmit(frame, enforce_power=False)
            self.medium.transmit(antenna, frame, start_time)

        reference_time = start_time + REFERENCE_OFFSET / cfg.sample_rate

        # slaves capture the reference channel from the lead header, and a
        # precise lead CFO from the lead's interleaved slots (the 80-sample
        # turn-taking gives them a long estimation baseline for free)
        for ap in self.ap_ids[1:]:
            listen = self.listen_antenna[ap]
            frame_rx = self.medium.receive(listen, start_time, plan.frame_length)
            self.synchronizers[ap].set_reference(frame_rx, reference_time)
            _, lead_cfo, _ = estimate_single_ap(frame_rx, plan, ap=0)
            self.synchronizers[ap].cfo_tracker.update(lead_cfo, weight=1.0)
            self._sounding_cfos[ap] = self.synchronizers[ap].cfo_tracker.estimate_hz

        # each client antenna estimates all channels and "feeds them back"
        estimates = []
        for client_antenna in self.client_antenna_ids:
            rx = self.medium.receive(client_antenna, start_time, plan.frame_length)
            estimates.append(estimate_at_client(rx, plan))

        if cfg.in_band_feedback:
            estimates = self._collect_in_band_feedback(
                estimates, start_time + plan.frame_length / cfg.sample_rate
            )

        self.medium.clear()
        self.sounding_result = SoundingResult(
            client_estimates=estimates, reference_time=reference_time
        )
        self._channel_tensor = self.sounding_result.channel_tensor()
        self._client_noise = np.array([e.noise_power for e in estimates])
        self.reference_time = reference_time
        return self.sounding_result

    def _collect_in_band_feedback(self, ideal_estimates, start_time: float):
        """Replace ideal feedback with decoded over-the-air CSI reports.

        Each client antenna serializes its (occupied-bin) estimates and
        noise floor, and transmits them sequentially as QPSK-1/2 frames;
        the lead AP decodes each and reconstructs the estimate.  CRC
        failures fall back to the ideal hand-off.
        """
        from repro.core.feedback import deserialize_report, serialize_report
        from repro.core.sounding import ClientSoundingEstimate
        from repro.phy.link import PointToPointLink

        fs = self.config.sample_rate
        occupied = np.nonzero(np.abs(lts_grid()) > 0)[0]
        link = PointToPointLink(self.medium)
        guard = 200  # samples between the sounding frame and each report

        out = []
        t = start_time + guard / fs
        for est, client_antenna in zip(ideal_estimates, self.client_antenna_ids):
            report = serialize_report(
                est.channels[:, occupied].T, est.noise_power, bits=8
            )
            t = round(t * fs) / fs
            packet = link.send(client_antenna, report, t)
            decoded = link.receive(self.lead_antenna, packet)
            t += (packet.n_samples + guard) / fs
            if decoded.crc_ok:
                channels_occ, noise_power = deserialize_report(decoded.payload)
                channels = np.zeros_like(est.channels)
                channels[:, occupied] = channels_occ.T
                out.append(
                    ClientSoundingEstimate(
                        channels=channels,
                        cfos_hz=est.cfos_hz,
                        noise_power=noise_power,
                    )
                )
            else:
                self.feedback_failures += 1
                out.append(est)
        return out

    # ------------------------------------------------------------------
    # joint transmission (§5.2)
    # ------------------------------------------------------------------

    def _occupied_bins(self) -> np.ndarray:
        return np.nonzero(np.abs(lts_grid()) > 0)[0]

    def _precoders_per_bin(
        self, streams: Sequence[int], antennas: Optional[Sequence[int]] = None
    ):
        """ZF precoders for the chosen client streams on every occupied bin.

        Args:
            streams: Client-antenna row indices to serve.
            antennas: Transmit-antenna column indices to use (default: all).
                Unused antennas get zero rows, so e.g. a single AP can serve
                its own clients as an ordinary (non-distributed) MIMO node.

        Returns:
            (bins, precoders, gains): precoders[b] is (n_antennas_total,
            n_streams) with zeros on unused antennas.
        """
        require(self._channel_tensor is not None, "run_sounding first")
        n_total = len(self.antenna_ids)
        if antennas is None:
            antennas = list(range(n_total))
        antennas = list(antennas)
        bins = self._occupied_bins()
        precoders = {}
        gains = np.empty(bins.size)
        for idx, b in enumerate(bins):
            h = self._channel_tensor[b][np.ix_(list(streams), antennas)]
            w, k = zero_forcing_precoder(h)
            full = np.zeros((n_total, len(streams)), dtype=complex)
            full[antennas, :] = w
            precoders[b] = full
            gains[idx] = k
        return bins, precoders, gains

    def _build_joint_samples(
        self,
        stream_grids: np.ndarray,
        bins: np.ndarray,
        precoders: Dict[int, np.ndarray],
    ) -> np.ndarray:
        """Precode per-stream symbol grids into per-AP time samples.

        Args:
            stream_grids: (n_streams, n_symbols, 64) frequency grids.
            bins: Occupied bin indices.
            precoders: bin -> (n_aps, n_streams) matrix.

        Returns:
            (n_aps, n_symbols * 80) time samples.
        """
        n_streams, n_symbols, _ = stream_grids.shape
        n_aps = len(self.antenna_ids)
        ap_grids = np.zeros((n_aps, n_symbols, FFT_SIZE), dtype=complex)
        for b in bins:
            w = precoders[b]  # (n_antennas, n_streams)
            # (n_antennas, n_symbols) = (n_antennas, n_streams) @ (n_streams, n_symbols)
            ap_grids[:, :, b] = w @ stream_grids[:, :, b]
        samples = np.empty((n_aps, n_symbols * SYMBOL_LENGTH), dtype=complex)
        for a in range(n_aps):
            chunks = [
                self._modulator.modulate_grid(ap_grids[a, m])
                for m in range(n_symbols)
            ]
            samples[a] = np.concatenate(chunks)
        return samples

    def _stream_grids(self, payloads: Sequence[bytes], mcs: Mcs) -> np.ndarray:
        """Per-stream grids: 2 beamformed LTS symbols + SIGNAL + data."""
        grids = []
        n_symbols = None
        for payload in payloads:
            fd_symbols = self._encoder.encode(payload, mcs)  # (1+n_data, 48)
            if n_symbols is None:
                n_symbols = fd_symbols.shape[0]
            require(
                fd_symbols.shape[0] == n_symbols,
                "all joint payloads must occupy the same number of symbols "
                "(MegaMIMO gives every client the same rate, §9)",
            )
            stream = [lts_grid(), lts_grid()]
            stream += [
                self._modulator.symbol_grid(fd_symbols[m], symbol_index=m)
                for m in range(fd_symbols.shape[0])
            ]
            grids.append(np.stack(stream))
        return np.stack(grids)  # (n_streams, 2 + 1 + n_data, 64)

    def _slave_correction(
        self,
        slave: str,
        times: np.ndarray,
        observation: Optional[SyncObservation],
    ) -> np.ndarray:
        """Phase-correction phasor per transmit sample for one slave AP."""
        strategy = self.config.sync_strategy
        if strategy == "none":
            return np.ones(times.size, dtype=complex)
        if strategy == "oracle":
            lead_osc = self.medium.oscillator(self.lead_antenna)
            slave_osc = self.medium.oscillator(self.listen_antenna[slave])
            t_ref = self.reference_time
            now = lead_osc.phase_at(times) - slave_osc.phase_at(times)
            ref = lead_osc.phase_at([t_ref])[0] - slave_osc.phase_at([t_ref])[0]
            return np.exp(1j * (now - ref))
        if strategy == "naive":
            cfo = self._sounding_cfos[slave]
            return np.exp(2j * np.pi * cfo * (times - self.reference_time))
        sync = self.synchronizers[slave]
        require(observation is not None, "missing sync observation")
        if strategy == "megamimo-no-tracking":
            return sync.correction_without_inpacket_tracking(times, observation)
        return sync.correction(times, observation)

    def _genie_misalignment(self, slave: str, applied: complex, at_time: float) -> float:
        """True phase error of a slave's applied correction (diagnostic)."""
        lead_osc = self.medium.oscillator(self.lead_antenna)
        slave_osc = self.medium.oscillator(self.listen_antenna[slave])
        t_ref = self.reference_time
        ideal = (
            lead_osc.phase_at([at_time])[0]
            - slave_osc.phase_at([at_time])[0]
            - lead_osc.phase_at([t_ref])[0]
            + slave_osc.phase_at([t_ref])[0]
        )
        return abs(wrap_phase(float(np.angle(applied)) - ideal))

    def joint_transmit(
        self,
        payloads: Sequence[bytes],
        mcs: Mcs,
        start_time: float,
        streams: Sequence[int] = None,
        antennas: Sequence[int] = None,
    ) -> JointTransmissionReport:
        """Send one beamformed frame carrying ``payloads`` to the clients.

        Args:
            payloads: One payload per stream (same length -> same rate).
            mcs: Modulation and coding scheme (shared by all streams, §9).
            start_time: Absolute time of the lead sync header.
            streams: Client-antenna row indices served (defaults to the
                first len(payloads) rows); ``payloads[i]`` goes to
                ``streams[i]``.  With single-antenna clients rows coincide
                with client indices.
            antennas: Transmit-antenna column indices to use (default all).
                Restricting to one device's antennas yields an ordinary
                single-AP MIMO transmission — the 802.11n baseline of §11.5.

        Returns:
            A :class:`JointTransmissionReport`.
        """
        with trace.span(
            "joint_tx", n_streams=len(payloads), mcs=mcs.name, t=start_time
        ) as span:
            report = self._joint_transmit(payloads, mcs, start_time, streams, antennas)
            self._record_joint_report(report, span)
        return report

    def _joint_transmit(
        self,
        payloads: Sequence[bytes],
        mcs: Mcs,
        start_time: float,
        streams: Sequence[int] = None,
        antennas: Sequence[int] = None,
    ) -> JointTransmissionReport:
        cfg = self.config
        if streams is None:
            streams = list(range(len(payloads)))
        require(len(streams) == len(payloads), "one payload per stream")
        require(self._channel_tensor is not None, "run_sounding first")

        self.medium.clear()
        fs = cfg.sample_rate

        # 1. lead sync header (from the lead device's reference antenna)
        header = sync_header()
        header_tx = self.frontends[self.lead_antenna].prepare_transmit(
            header, enforce_power=False
        )
        self.medium.transmit(self.lead_antenna, header_tx, start_time)
        header_len = sync_header_length()
        header_time = start_time + REFERENCE_OFFSET / fs

        # 2. slaves observe the header
        observations: Dict[str, SyncObservation] = {}
        if cfg.sync_strategy in ("megamimo", "megamimo-no-tracking"):
            for ap in self.ap_ids[1:]:
                rx = self._capture_header(self.listen_antenna[ap], start_time)
                observations[ap] = self.synchronizers[ap].observe_header(rx, header_time)

        # 3. precode
        with trace.span("precoding"):
            bins, precoders, gains = self._precoders_per_bin(streams, antennas)
        with trace.span("ofdm_mod"):
            stream_grids = self._stream_grids(payloads, mcs)
            ap_samples = self._build_joint_samples(stream_grids, bins, precoders)
        active = (
            set(range(len(self.antenna_ids))) if antennas is None else set(antennas)
        )

        # 4. transmit jointly after the legacy preamble; with mixed-mode
        # (§6.1) hardware timing the slaves "join the lead AP's transmission
        # after the legacy symbols" with no software turnaround
        trigger_time = start_time + header_len / fs
        if cfg.mixed_mode:
            joint_start = trigger_time
        else:
            joint_start = self.timer.joint_start_time(trigger_time)
        # snap the nominal start to the sample grid; per-AP jitter stays
        joint_start = round(joint_start * fs) / fs
        misalignment: Dict[str, float] = {}
        # one trigger-timing jitter draw per *device* (shared clock)
        device_starts = [joint_start] + [
            joint_start + float(self._rng.normal(0.0, self.timer.config.jitter_std_s))
            for _ in self.ap_ids[1:]
        ]
        with trace.span("tx_frontend"):
            for i, antenna in enumerate(self.antenna_ids):
                if i not in active:
                    continue
                device = self.antenna_device[i]
                ap = self.ap_ids[device]
                tx = ap_samples[i]
                node_start = device_starts[device]
                if device != 0:
                    times = node_start + np.arange(tx.size) / fs
                    correction = self._slave_correction(ap, times, observations.get(ap))
                    tx = tx * correction
                    if ap not in misalignment:
                        misalignment[ap] = self._genie_misalignment(
                            ap, correction[0], node_start
                        )
                tx = self.frontends[antenna].prepare_transmit(tx, enforce_power=False)
                self.medium.transmit(antenna, tx, node_start)

        # 5. client antennas receive and decode their streams
        n_symbols = stream_grids.shape[1]
        receptions = []
        for stream_idx, row_idx in enumerate(streams):
            node = self.client_antenna_ids[row_idx]
            reception = self._receive_and_decode(
                node, start_time, joint_start, n_symbols
            )
            receptions.append(reception)

        self.medium.clear()
        return JointTransmissionReport(
            receptions=receptions,
            misalignment_rad=misalignment,
            joint_start_time=joint_start,
            precoder_gain=float(np.mean(gains)),
        )

    def _record_joint_report(self, report: JointTransmissionReport, span) -> None:
        """Fold one joint transmission's outcome into metrics and the trace."""
        n_ok = 0
        for i, r in enumerate(report.receptions):
            ok = bool(r.decoded is not None and r.decoded.crc_ok)
            n_ok += ok
            (self._obs_decode_ok if ok else self._obs_decode_fail).inc()
            if np.isfinite(r.effective_snr_db):
                self._obs_snr.observe(r.effective_snr_db)
            if np.isfinite(r.evm_db):
                self._obs_evm.observe(r.evm_db)
            trace.event(
                "joint_tx.client",
                client=i,
                crc_ok=ok,
                effective_snr_db=r.effective_snr_db,
                evm_db=r.evm_db,
            )
        for value in report.misalignment_rad.values():
            self._obs_misalign.observe(value)
        span.record(
            decode_ok=n_ok,
            decode_fail=len(report.receptions) - n_ok,
            precoder_gain=report.precoder_gain,
            misalignment_rad=report.misalignment_rad,
        )

    #: noise-only samples captured before the expected packet when packet
    #: detection (rather than genie timing) locates the header
    DETECTION_PREROLL = 240

    def _detect_and_align(self, rx: np.ndarray) -> Optional[np.ndarray]:
        """Find the sync header in a captured stream and align to its start.

        Returns the stream starting at the header's first STS sample, or
        None when detection fails.
        """
        from repro.phy.detection import detect_packet, ideal_lts_offset

        detection = detect_packet(rx, threshold=0.7)
        if detection is None:
            return None
        header_start = detection.lts_start - ideal_lts_offset(0)
        if header_start < 0:
            return None
        return rx[header_start:]

    def _capture_header(self, node: str, start_time: float) -> np.ndarray:
        """Capture one sync header at ``node``, via detection if enabled.

        Falls back to the genie-aligned window (and counts the miss in
        ``detection_failures``) if the detector cannot find the header.
        """
        fs = self.config.sample_rate
        header_len = sync_header_length()
        if self.config.use_detection:
            preroll = self.DETECTION_PREROLL
            window_start = max(start_time - preroll / fs, 0.0)
            lead_in = int(round((start_time - window_start) * fs))
            capture = self.medium.receive(
                node, window_start, header_len + lead_in + preroll
            )
            aligned = self._detect_and_align(capture)
            if aligned is not None and aligned.size >= header_len:
                return aligned[:header_len]
            self.detection_failures += 1
        return self.medium.receive(node, start_time, header_len)

    def _receive_and_decode(
        self,
        client: str,
        header_start: float,
        joint_start: float,
        n_symbols: int,
    ) -> ClientReception:
        """Standard-OFDM client receive chain for one joint frame."""
        cfg = self.config
        fs = cfg.sample_rate
        total = int(round((joint_start - header_start) * fs)) + n_symbols * SYMBOL_LENGTH
        if cfg.use_detection:
            # capture with a noise pre-roll and locate the header by its STS
            preroll = self.DETECTION_PREROLL
            with trace.span("channel_apply", node=client):
                capture = self.medium.receive(
                    client, header_start - preroll / fs, total + 2 * preroll
                )
            rx = self._detect_and_align(capture)
            if rx is None or rx.size < total:
                return ClientReception(
                    decoded=DecodedFrame(payload=None, crc_ok=False, mcs=None),
                    effective_snr_db=-np.inf,
                    evm_db=np.nan,
                )
            rx = rx[:total]
        else:
            with trace.span("channel_apply", node=client):
                rx = self.medium.receive(client, header_start, total)

        with trace.span("ofdm_demod", node=client):
            # CFO lock to the lead from its sync header
            coarse = estimate_cfo_coarse(rx[:160], fs)
            lts_off = lts_symbol_offsets()[0]
            fine = estimate_cfo_fine(rx[lts_off : lts_off + 2 * FFT_SIZE], fs)
            cfo = combine_cfo(coarse, fine, fs)
            rx = apply_cfo(rx, -cfo, fs)

            joint_off = int(round((joint_start - header_start) * fs))
            # effective channel from the two beamformed LTS symbols
            est = []
            for rep in range(2):
                s = joint_off + rep * SYMBOL_LENGTH + CP_LENGTH
                est.append(estimate_channel_lts(rx[s : s + FFT_SIZE]))
            effective = average_channel_estimates(est)

            # demodulate SIGNAL + data with pilot phase tracking
            data_start = joint_off + 2 * SYMBOL_LENGTH
            symbols = []
            pilot_snrs = []
            for m in range(n_symbols - 2):
                s = data_start + m * SYMBOL_LENGTH
                eq = self._demodulator.demodulate_symbol(
                    rx[s : s + SYMBOL_LENGTH], effective, symbol_index=m
                )
                symbols.append(eq.data)
                pilot_snrs.append(eq.pilot_snr)
            symbols = np.stack(symbols)
            noise_var = float(np.mean(1.0 / np.maximum(pilot_snrs, 1e-6)))
        with trace.span("decode", node=client):
            decoded = self._decoder.decode(symbols, noise_var=noise_var)
        snr_db = float(linear_to_db(np.mean(pilot_snrs)))
        return ClientReception(
            decoded=decoded, effective_snr_db=snr_db, evm_db=decoded.evm_db
        )

    # ------------------------------------------------------------------
    # diversity mode (§8)
    # ------------------------------------------------------------------

    def diversity_transmit(
        self, payload: bytes, mcs: Mcs, client_index: int, start_time: float
    ) -> JointTransmissionReport:
        """All APs beamform a single stream coherently to one client."""
        with trace.span(
            "diversity_tx", client=client_index, mcs=mcs.name, t=start_time
        ) as span:
            report = self._diversity_transmit(payload, mcs, client_index, start_time)
            self._record_joint_report(report, span)
        return report

    def _diversity_transmit(
        self, payload: bytes, mcs: Mcs, client_index: int, start_time: float
    ) -> JointTransmissionReport:
        cfg = self.config
        require(self._channel_tensor is not None, "run_sounding first")
        self.medium.clear()
        fs = cfg.sample_rate

        header = sync_header()
        self.medium.transmit(
            self.lead_antenna,
            self.frontends[self.lead_antenna].prepare_transmit(
                header, enforce_power=False
            ),
            start_time,
        )
        header_len = sync_header_length()
        header_time = start_time + REFERENCE_OFFSET / fs
        observations: Dict[str, SyncObservation] = {}
        if cfg.sync_strategy in ("megamimo", "megamimo-no-tracking"):
            for ap in self.ap_ids[1:]:
                rx = self._capture_header(self.listen_antenna[ap], start_time)
                observations[ap] = self.synchronizers[ap].observe_header(rx, header_time)

        bins = self._occupied_bins()
        precoders = {}
        for b in bins:
            row = self._channel_tensor[b][client_index, :]
            precoders[b] = diversity_precoder(row).reshape(-1, 1) / np.sqrt(
                len(self.antenna_ids)
            )
        stream_grids = self._stream_grids([payload], mcs)
        ap_samples = self._build_joint_samples(stream_grids, bins, precoders)

        trigger_time = start_time + header_len / fs
        joint_start = round(self.timer.joint_start_time(trigger_time) * fs) / fs
        misalignment: Dict[str, float] = {}
        for i, antenna in enumerate(self.antenna_ids):
            device = self.antenna_device[i]
            ap = self.ap_ids[device]
            tx = ap_samples[i]
            if device != 0:
                times = joint_start + np.arange(tx.size) / fs
                correction = self._slave_correction(ap, times, observations.get(ap))
                tx = tx * correction
                if ap not in misalignment:
                    misalignment[ap] = self._genie_misalignment(
                        ap, correction[0], joint_start
                    )
            tx = self.frontends[antenna].prepare_transmit(tx, enforce_power=False)
            self.medium.transmit(antenna, tx, joint_start)

        reception = self._receive_and_decode(
            self.client_antenna_ids[client_index],
            start_time,
            joint_start,
            stream_grids.shape[1],
        )
        self.medium.clear()
        return JointTransmissionReport(
            receptions=[reception],
            misalignment_rad=misalignment,
            joint_start_time=joint_start,
            precoder_gain=1.0,
        )

    # ------------------------------------------------------------------
    # nulling / INR measurement (Fig. 8 methodology)
    # ------------------------------------------------------------------

    def measure_inr(
        self,
        nulled_client: int,
        start_time: float,
        payload_bytes: int = 100,
        mcs: Mcs = None,
    ) -> float:
        """Beamform to every client except one, nulling at that one, and
        return the (signal+noise)-to-noise ratio (dB) measured there.

        Perfect phase alignment gives 0 dB ("the ratio of the received
        signal power to noise should be 0 dB"); misalignment leaks the other
        clients' streams into the null and raises it.
        """
        from repro.phy.mcs import get_mcs

        cfg = self.config
        mcs = mcs or get_mcs(2)
        n_rows = len(self.client_antenna_ids)
        streams = [i for i in range(n_rows) if i != nulled_client]
        require(streams, "need at least one other client to transmit to")
        payloads = [bytes(payload_bytes) for _ in streams]

        self.medium.clear()
        fs = cfg.sample_rate
        header = sync_header()
        self.medium.transmit(
            self.lead_antenna,
            self.frontends[self.lead_antenna].prepare_transmit(
                header, enforce_power=False
            ),
            start_time,
        )
        header_len = sync_header_length()
        header_time = start_time + REFERENCE_OFFSET / fs
        observations: Dict[str, SyncObservation] = {}
        if cfg.sync_strategy in ("megamimo", "megamimo-no-tracking"):
            for ap in self.ap_ids[1:]:
                rx = self._capture_header(self.listen_antenna[ap], start_time)
                observations[ap] = self.synchronizers[ap].observe_header(rx, header_time)

        # Precoders come from the *full* channel matrix so the nulled
        # client's row is explicitly forced to zero for the other streams.
        all_rows = list(range(n_rows))
        bins, precoders, _ = self._precoders_per_bin(all_rows)
        reduced = {b: w[:, streams] for b, w in precoders.items()}
        stream_grids = self._stream_grids(payloads, mcs)
        ap_samples = self._build_joint_samples(stream_grids, bins, reduced)

        trigger_time = start_time + header_len / fs
        joint_start = round(self.timer.joint_start_time(trigger_time) * fs) / fs
        for i, antenna in enumerate(self.antenna_ids):
            device = self.antenna_device[i]
            ap = self.ap_ids[device]
            tx = ap_samples[i]
            if device != 0:
                times = joint_start + np.arange(tx.size) / fs
                tx = tx * self._slave_correction(ap, times, observations.get(ap))
            tx = self.frontends[antenna].prepare_transmit(tx, enforce_power=False)
            self.medium.transmit(antenna, tx, joint_start)

        client = self.client_antenna_ids[nulled_client]
        n = ap_samples.shape[1]
        rx = self.medium.receive(client, joint_start, n)
        power = float(np.mean(np.abs(rx) ** 2))
        self.medium.clear()
        return float(linear_to_db(power / cfg.noise_power))
