"""802.11n compatibility: channel measurement with off-the-shelf clients (§6).

An 802.11n client with K antennas can sound at most K transmit streams per
packet, so it can never take a one-shot snapshot of the channels from *all*
AP antennas.  MegaMIMO "tricks" the client (§6.2): every sounding packet is
a two-stream transmission that always includes the lead AP's **reference
antenna** L1 plus one other antenna.  Because L1 appears in every packet,
the phase drift between any two packets can be measured twice —

* lead <-> client, from the two L1 -> R estimates, and
* lead <-> slave, from the slave's own L1 -> S measurements (it hears the
  legacy preamble of every packet, which doubles as the sync header, §6.1)

— and their difference is exactly the slave <-> client drift needed to
rotate the slave antenna's estimate back to the reference packet's time t0:

    offset(S, R) = offset(L1, R) - offset(L1, S)        over [t0, t]
    h_{S->R}(t0) = h_{S->R}(t) * exp(-j * offset(S, R))

Repeating for every non-reference antenna stitches together a full channel
snapshot "as if" measured simultaneously at t0, with no receiver CFO
estimate required anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.narrowband import NarrowbandNetwork
from repro.utils.units import wrap_phase
from repro.utils.validation import require


@dataclass
class StitchedChannelEstimate:
    """A full channel snapshot assembled from sequential 2-stream soundings.

    Attributes:
        channel: (n_rx_antennas, n_tx_antennas) estimate referred to time t0.
        reference_time: t0, the time of the first sounding packet.
        tx_antennas: Column labels.
        rx_antennas: Row labels.
    """

    channel: np.ndarray
    reference_time: float
    tx_antennas: List[str]
    rx_antennas: List[str]

    def column(self, tx_antenna: str) -> np.ndarray:
        return self.channel[:, self.tx_antennas.index(tx_antenna)]


class Compat80211nSounder:
    """Runs the §6.2 measurement schedule on a narrowband network.

    Args:
        network: The simulated antennas/oscillators/channels.
        reference_antenna: The lead antenna included in every packet (L1).
        client_snr_db: CSI estimation SNR at the client (None = noiseless).
        ap_snr_db: Estimation SNR of slave APs measuring the lead preamble.
    """

    def __init__(
        self,
        network: NarrowbandNetwork,
        reference_antenna: str,
        client_snr_db: Optional[float] = 25.0,
        ap_snr_db: Optional[float] = 30.0,
    ):
        self.network = network
        self.reference_antenna = reference_antenna
        self.lead_device = network.device_of(reference_antenna)
        self.client_snr_db = client_snr_db
        self.ap_snr_db = ap_snr_db

    def _slave_listen_antenna(self, device: str) -> str:
        """The antenna a slave device uses to observe the lead preamble."""
        antennas = sorted(
            a for a, d in self.network._antenna_device.items() if d == device
        )
        require(antennas, f"device {device!r} has no antennas")
        return antennas[0]

    def measure(
        self,
        tx_antennas: Sequence[str],
        rx_antennas: Sequence[str],
        start_time: float = 0.0,
        packet_spacing_s: float = 2e-3,
    ) -> StitchedChannelEstimate:
        """Measure the full (rx, tx) channel matrix referred to ``start_time``.

        Packet k pairs the reference antenna with the k-th non-reference
        antenna at time ``start_time + k * packet_spacing_s``.  Every slave
        device listens to the legacy preamble of every packet, so each
        slave's drift baseline is its *own* observation at t0 (§6.1).
        """
        tx_antennas = list(tx_antennas)
        rx_antennas = list(rx_antennas)
        require(
            self.reference_antenna in tx_antennas,
            "reference antenna must be part of the measured set",
        )
        others = [a for a in tx_antennas if a != self.reference_antenna]
        require(others, "need at least one non-reference antenna")

        slave_devices = sorted(
            {
                self.network.device_of(a)
                for a in others
                if self.network.device_of(a) != self.lead_device
            }
        )
        times = [start_time + k * packet_spacing_s for k in range(len(others))]
        t0 = times[0]

        # every slave observes the lead preamble at every packet time
        lead_obs: Dict[Tuple[str, float], complex] = {}
        for device in slave_devices:
            listen = self._slave_listen_antenna(device)
            for t in times:
                lead_obs[(device, t)] = self.network.observe(
                    self.reference_antenna, listen, t, self.ap_snr_db
                )

        # client-side 2-stream soundings
        logs = []
        for antenna, t in zip(others, times):
            lead_to_client = {
                rx: self.network.observe(
                    self.reference_antenna, rx, t, self.client_snr_db
                )
                for rx in rx_antennas
            }
            paired_to_client = {
                rx: self.network.observe(antenna, rx, t, self.client_snr_db)
                for rx in rx_antennas
            }
            logs.append((antenna, t, lead_to_client, paired_to_client))

        n_rx, n_tx = len(rx_antennas), len(tx_antennas)
        channel = np.zeros((n_rx, n_tx), dtype=complex)
        ref_col = tx_antennas.index(self.reference_antenna)
        _, _, first_lead_to_client, first_paired = logs[0]
        for ri, rx in enumerate(rx_antennas):
            channel[ri, ref_col] = first_lead_to_client[rx]
        first_col = tx_antennas.index(logs[0][0])
        for ri, rx in enumerate(rx_antennas):
            channel[ri, first_col] = first_paired[rx]

        # later packets: rotate each estimate back to t0 (§6.2)
        for antenna, t, lead_to_client, paired_to_client in logs[1:]:
            col = tx_antennas.index(antenna)
            device = self.network.device_of(antenna)
            for ri, rx in enumerate(rx_antennas):
                # accumulated lead<->client offset over [t0, t]
                lr = np.angle(lead_to_client[rx] * np.conj(first_lead_to_client[rx]))
                if device == self.lead_device:
                    # lead-device antennas share the lead oscillator, so
                    # their drift relative to the client IS the L1<->R drift
                    offset = lr
                else:
                    # accumulated lead<->slave offset over [t0, t]
                    ls = np.angle(
                        lead_obs[(device, t)] * np.conj(lead_obs[(device, t0)])
                    )
                    offset = lr - ls
                channel[ri, col] = paired_to_client[rx] * np.exp(-1j * offset)

        return StitchedChannelEstimate(
            channel=channel,
            reference_time=t0,
            tx_antennas=tx_antennas,
            rx_antennas=rx_antennas,
        )

    def naive_measure(
        self,
        tx_antennas: Sequence[str],
        rx_antennas: Sequence[str],
        start_time: float = 0.0,
        packet_spacing_s: float = 2e-3,
    ) -> StitchedChannelEstimate:
        """The strawman of §6.2: separate packets, no reference stitching.

        Each antenna's channel is taken from its own packet verbatim, so
        oscillator drift between packets corrupts the snapshot.  Kept for
        the ablation benchmark.
        """
        tx_antennas = list(tx_antennas)
        rx_antennas = list(rx_antennas)
        times = [start_time + k * packet_spacing_s for k in range(len(tx_antennas))]
        channel = np.zeros((len(rx_antennas), len(tx_antennas)), dtype=complex)
        for ci, (antenna, t) in enumerate(zip(tx_antennas, times)):
            for ri, rx in enumerate(rx_antennas):
                channel[ri, ci] = self.network.observe(
                    antenna, rx, t, self.client_snr_db
                )
        return StitchedChannelEstimate(
            channel=channel,
            reference_time=times[0],
            tx_antennas=tx_antennas,
            rx_antennas=rx_antennas,
        )

    def true_snapshot(
        self, tx_antennas: Sequence[str], rx_antennas: Sequence[str], t: float
    ) -> np.ndarray:
        """Genie channel matrix at time ``t`` (for validation)."""
        tx_antennas = list(tx_antennas)
        rx_antennas = list(rx_antennas)
        out = np.empty((len(rx_antennas), len(tx_antennas)), dtype=complex)
        for ri, rx in enumerate(rx_antennas):
            for ci, tx in enumerate(tx_antennas):
                out[ri, ci] = self.network.true_channel(tx, rx, t)
        return out


def stitching_phase_error(
    estimate: StitchedChannelEstimate, truth: np.ndarray
) -> np.ndarray:
    """Per-entry phase error (radians) of a stitched estimate vs. genie truth.

    Removes the common per-row rotation a receiver can never observe (its
    own oscillator phase), since beamforming only needs relative phases
    across transmit antennas.
    """
    est = estimate.channel
    require(est.shape == truth.shape, "shape mismatch")
    errors = np.empty(est.shape)
    for ri in range(est.shape[0]):
        rel_est = est[ri] * np.conj(est[ri, 0] / abs(est[ri, 0]))
        rel_true = truth[ri] * np.conj(truth[ri, 0] / abs(truth[ri, 0]))
        errors[ri] = np.abs(wrap_phase(np.angle(rel_est) - np.angle(rel_true)))
    return errors
