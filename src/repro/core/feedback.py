"""CSI feedback: quantization and airtime of the channel reports.

"The receivers then communicate these estimated channels back to the
transmitters over the wireless channel" (§5.1b), and additionally "Clients
send the noise N to APs along with the measured channels" (§9).  Real
feedback is quantized — 802.11n CSI reports carry 4-8 bits per real
dimension — so the precoder never sees the client's exact estimate.

This module models that last hop:

* ``quantize_csi`` — uniform per-component quantization of a channel
  tensor, scaled per report (the 802.11n style: a per-report exponent plus
  fixed-point entries);
* ``CsiFeedbackCodec`` — round-trip encode/decode with airtime accounting;
* ``feedback_distortion_db`` — quantization SNR as a function of bit
  width, used by the ablation that sweeps feedback precision against
  beamforming leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.units import linear_to_db
from repro.utils.validation import require


def quantize_csi(channels: np.ndarray, bits: int) -> np.ndarray:
    """Quantize a complex channel tensor to ``bits`` per real component.

    Uses a single per-report scale (the max absolute component), like the
    802.11n compressed-CSI format's shared exponent.  ``bits >= 16``
    returns the input unchanged (beyond-float precision is meaningless).
    """
    require(bits >= 1, "need at least one bit")
    channels = np.asarray(channels, dtype=complex)
    if bits >= 16 or channels.size == 0:
        return channels.copy()
    scale = float(np.max(np.abs(np.concatenate([channels.real.ravel(),
                                                channels.imag.ravel()]))))
    if scale == 0.0:  # repro: noqa[NUM001] exact zero = all-zero input, avoid 0/0
        return channels.copy()
    levels = (1 << (bits - 1)) - 1  # signed fixed point
    step = scale / levels

    def q(x):
        return np.clip(np.round(x / step), -levels - 1, levels) * step

    return q(channels.real) + 1j * q(channels.imag)


def feedback_distortion_db(channels: np.ndarray, bits: int) -> float:
    """Quantization SNR (dB): signal power over quantization error power."""
    channels = np.asarray(channels, dtype=complex)
    quantized = quantize_csi(channels, bits)
    err = float(np.mean(np.abs(channels - quantized) ** 2))
    sig = float(np.mean(np.abs(channels) ** 2))
    if err == 0.0:  # repro: noqa[NUM001] exact zero = lossless quantization
        return float("inf")
    return float(linear_to_db(sig / err))


@dataclass
class CsiFeedbackCodec:
    """Encode a client's channel report and account for its airtime.

    Attributes:
        bits_per_component: Fixed-point width per real dimension.
        feedback_rate_bps: PHY rate the report is sent at (clients use a
            robust low MCS for control traffic).
        header_bits: Fixed per-report overhead (MAC header, report id,
            the shared exponent, the client's noise figure N from §9).
    """

    bits_per_component: int = 8
    feedback_rate_bps: float = 12e6
    header_bits: int = 128

    def report_bits(self, n_subcarriers: int, n_tx_antennas: int) -> int:
        """Size of one client's CSI report in bits."""
        require(n_subcarriers >= 1 and n_tx_antennas >= 1, "empty report")
        per_entry = 2 * self.bits_per_component
        return self.header_bits + n_subcarriers * n_tx_antennas * per_entry

    def airtime_s(self, n_subcarriers: int, n_tx_antennas: int) -> float:
        """Airtime of one client's report at the feedback rate."""
        return self.report_bits(n_subcarriers, n_tx_antennas) / self.feedback_rate_bps

    def roundtrip(self, channels: np.ndarray) -> Tuple[np.ndarray, float]:
        """Quantize a report and return (reconstruction, airtime_s).

        ``channels`` is the (n_subcarriers, n_tx) slice one client feeds
        back.
        """
        channels = np.asarray(channels, dtype=complex)
        require(channels.ndim == 2, "one client's report is (n_subcarriers, n_tx)")
        quantized = quantize_csi(channels, self.bits_per_component)
        return quantized, self.airtime_s(channels.shape[0], channels.shape[1])


#: first byte of every serialized CSI report
_REPORT_MAGIC = 0xC5
#: magic(1) + n_tx(1) + bits(1) + n_bins(2) + noise(4) + scale(4)
_REPORT_HEADER_BYTES = 13


def serialize_report(
    channels: np.ndarray, noise_power: float, bits: int = 8
) -> bytes:
    """Pack one client's CSI report into bytes for over-the-air feedback.

    Layout: magic byte, n_tx, n_bins (uint16), noise power (float32),
    shared scale (float32), then int8/int16 fixed-point real/imag pairs in
    (bin, tx) order.

    Args:
        channels: (n_bins, n_tx) complex estimates (occupied bins only).
        noise_power: The client's measured noise floor (§9: "Clients send
            the noise N to APs along with the measured channels").
        bits: 8 or 16 per real component.
    """
    require(bits in (8, 16), "supported widths: 8 or 16 bits per component")
    channels = np.asarray(channels, dtype=complex)
    require(channels.ndim == 2, "report is (n_bins, n_tx)")
    n_bins, n_tx = channels.shape
    require(n_tx < 256 and n_bins < 65536, "report dimensions out of range")

    components = np.concatenate([channels.real.ravel(), channels.imag.ravel()])
    scale = float(np.max(np.abs(components))) if components.size else 0.0
    levels = (1 << (bits - 1)) - 1
    if scale > 0:
        fixed = np.round(components / scale * levels)
    else:
        fixed = np.zeros_like(components)
    dtype = np.int8 if bits == 8 else np.int16
    fixed = np.clip(fixed, -levels - 1, levels).astype(dtype)

    header = bytes([_REPORT_MAGIC, n_tx, bits]) + (
        int(n_bins).to_bytes(2, "little")
        + np.float32(noise_power).tobytes()
        + np.float32(scale).tobytes()
    )
    return header + fixed.tobytes()


def deserialize_report(data: bytes):
    """Unpack :func:`serialize_report` output.

    Returns:
        (channels, noise_power): the (n_bins, n_tx) complex estimates and
        the reported noise floor.

    Raises:
        ValueError: On a malformed or truncated report.
    """
    data = bytes(data)
    require(len(data) >= 13, "report too short")
    require(data[0] == _REPORT_MAGIC, "bad report magic")
    n_tx, bits = data[1], data[2]
    require(bits in (8, 16), "bad component width")
    n_bins = int.from_bytes(data[3:5], "little")
    noise_power = float(np.frombuffer(data[5:9], dtype=np.float32)[0])
    scale = float(np.frombuffer(data[9:13], dtype=np.float32)[0])
    dtype = np.int8 if bits == 8 else np.int16
    n_components = 2 * n_bins * n_tx
    body = np.frombuffer(data[13:], dtype=dtype)
    require(body.size == n_components, "truncated report body")
    levels = (1 << (bits - 1)) - 1
    components = body.astype(float) / levels * scale
    real = components[: n_bins * n_tx].reshape(n_bins, n_tx)
    imag = components[n_bins * n_tx :].reshape(n_bins, n_tx)
    return real + 1j * imag, noise_power


def apply_feedback_quantization(
    channel_tensor: np.ndarray, bits: int
) -> np.ndarray:
    """Quantize a (n_bins, n_clients, n_tx) tensor per client report."""
    channel_tensor = np.asarray(channel_tensor, dtype=complex)
    require(channel_tensor.ndim == 3, "need (n_bins, n_clients, n_tx)")
    out = np.empty_like(channel_tensor)
    for c in range(channel_tensor.shape[1]):
        out[:, c, :] = quantize_csi(channel_tensor[:, c, :], bits)
    return out
