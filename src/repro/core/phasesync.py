"""Distributed phase synchronization (paper §4, §5.2, §5.3).

Each slave AP keeps a **reference channel** — its measurement of the
lead->slave channel taken at the reference time of the last sounding phase.
Before every joint data transmission the lead emits a sync header; the slave
re-measures the lead channel and *divides the two measurements*:

    h_lead(t) / h_lead(0)  =  e^{j (w_lead - w_slave) t}

a direct phase observation with **no accumulated error**, unlike multiplying
a CFO estimate by elapsed time (§5.2b's 100 Hz -> pi rad in 20 ms example).
The slave multiplies its transmit signal by this rotation, then extrapolates
*within* the packet using a long-term averaged CFO estimate — accurate
enough over packet durations (§5.3, principle 1) though never across packets
(principle 2).

``NaiveCfoExtrapolator`` implements the strawman the paper argues against,
used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import FFT_SIZE
from repro.obs import metrics, trace
from repro.phy.cfo import CfoTracker, estimate_cfo_fine
from repro.phy.channel_est import (
    average_channel_estimates,
    channel_rotation,
    estimate_channel_lts,
)
from repro.phy.preamble import SYNC_HEADER_LTS_REPEATS, lts_symbol_offsets
from repro.utils.validation import require

#: Phase-error budget of the distributed sync, in radians (paper §7.3/§11).
#: Fig. 7 measures the deployed protocol's misalignment at a ~0.018-rad
#: median scale; Fig. 6 shows misalignment up to ~0.05 rad costs under
#: ~1 dB of SNR at 20 dB.  The sync-health monitor
#: (:func:`repro.obs.regress.sync_health_alarms`) raises a ledger alarm
#: when a run's per-slave phase-error p95 exceeds the p95 budget —
#: beyond it, rate selection starts paying real throughput for sync error.
PHASE_ERROR_BUDGET_MEDIAN_RAD = 0.018
PHASE_ERROR_BUDGET_P95_RAD = 0.05


@dataclass
class ReferenceChannel:
    """A slave's snapshot of the lead->slave channel at the reference time.

    Attributes:
        estimate: 64-bin complex channel estimate h_lead(0).
        reference_time: Absolute time the snapshot refers to (the start of
            the sounding sync header).
    """

    estimate: np.ndarray
    reference_time: float


@dataclass
class SyncObservation:
    """What a slave learns from one lead sync header.

    Attributes:
        rotation: Unit phasor e^{j (w_lead - w_slave)(t - t_ref)} mapping the
            reference channel onto the current one.
        cfo_hz: Instantaneous lead-slave CFO measured inside this header.
        header_time: Absolute time of the header (phase measurement instant).
        channel: The fresh 64-bin lead->slave channel estimate.
    """

    rotation: complex
    cfo_hz: float
    header_time: float
    channel: np.ndarray


def estimate_header_channel(
    header_samples: np.ndarray, lts_repeats: int = SYNC_HEADER_LTS_REPEATS
) -> np.ndarray:
    """Average LS channel estimates over the sync header's LTS copies.

    ``header_samples`` must be aligned to the header start (slave APs get
    alignment from packet detection on the STS).
    """
    header_samples = np.asarray(header_samples, dtype=complex).ravel()
    offsets = lts_symbol_offsets(lts_repeats)
    require(
        header_samples.size >= offsets[-1] + FFT_SIZE,
        "header sample buffer too short for its LTS copies",
    )
    estimates = [
        estimate_channel_lts(header_samples[off : off + FFT_SIZE]) for off in offsets
    ]
    return average_channel_estimates(estimates)


def estimate_header_cfo(
    header_samples: np.ndarray,
    sample_rate: float,
    lts_repeats: int = SYNC_HEADER_LTS_REPEATS,
) -> float:
    """Instantaneous CFO from the header's repeated LTS copies (Hz)."""
    offsets = lts_symbol_offsets(lts_repeats)
    start = offsets[0]
    return estimate_cfo_fine(
        np.asarray(header_samples, dtype=complex)[start : start + 2 * FFT_SIZE],
        sample_rate,
    )


class PhaseSynchronizer:
    """Runs on a slave AP: tracks phase alignment to the lead.

    Usage::

        sync = PhaseSynchronizer(sample_rate)
        sync.set_reference(header_samples, header_time)   # sounding phase
        obs = sync.observe_header(header_samples, t)      # every data frame
        corr = sync.correction(times, obs)                # per-sample phasor
        tx_samples *= corr

    Args:
        sample_rate: Channel sample rate.
        cfo_alpha: EWMA coefficient for the long-term CFO average.
    """

    def __init__(self, sample_rate: float, cfo_alpha: float = 0.1):
        self.sample_rate = float(sample_rate)
        self.reference: Optional[ReferenceChannel] = None
        self.cfo_tracker = CfoTracker(alpha=cfo_alpha)
        self._last_rotation_phase: Optional[float] = None
        self._last_rotation_time: Optional[float] = None
        # telemetry handles (cached once; updates are attribute arithmetic)
        self._obs_headers = metrics.counter("phasesync.headers")
        self._obs_phase = metrics.histogram("phasesync.phase_offset_rad")
        self._obs_cfo = metrics.histogram("phasesync.cfo_estimate_hz")
        self._obs_cfo_residual = metrics.histogram("phasesync.cfo_residual_hz")

    # -- sounding phase -----------------------------------------------------

    def set_reference(self, header_samples: np.ndarray, header_time: float) -> ReferenceChannel:
        """Capture h_lead(0) from the sounding sync header (§5.1c)."""
        estimate = estimate_header_channel(header_samples)
        self.reference = ReferenceChannel(estimate=estimate, reference_time=float(header_time))
        self.cfo_tracker.update(estimate_header_cfo(header_samples, self.sample_rate))
        self._last_rotation_phase = None
        self._last_rotation_time = None
        metrics.counter("phasesync.references").inc()
        trace.event(
            "phase_sync.set_reference",
            t=float(header_time),
            cfo_estimate_hz=float(self.cfo_tracker.estimate_hz),
        )
        return self.reference

    # -- data transmission phase ---------------------------------------------

    def observe_header(self, header_samples: np.ndarray, header_time: float) -> SyncObservation:
        """Measure the current phase offset from a data-frame sync header.

        Computes the rotation h_lead(t)/h_lead(0) (§5.2b) and refreshes the
        long-term CFO average from the header's LTS pair, plus — when a
        previous header is recent enough to be phase-unambiguous — from the
        rotation drift between headers.

        Each observation lands in the telemetry layer: a
        ``phase_sync.observe_header`` span with the measured phase offset
        and CFO residual, and the ``phasesync.*`` histograms.
        """
        with trace.span("phase_sync.observe_header", t=header_time) as span:
            observation = self._observe_header(header_samples, header_time, span)
        return observation

    def _observe_header(
        self, header_samples: np.ndarray, header_time: float, span
    ) -> SyncObservation:
        require(self.reference is not None, "no reference channel; run sounding first")
        channel = estimate_header_channel(header_samples)
        rotation = channel_rotation(self.reference.estimate, channel)
        phase = float(np.angle(rotation))

        # Within-header CFO (two LTS copies, 6.4 us baseline) is noisy —
        # ~100 Hz std at realistic AP-AP SNRs.  The long inter-header
        # baseline is far more precise but phase-wraps; the tracker's
        # current estimate resolves the wrap (the paper's "continuously
        # averaged estimate ... across multiple transmissions", §5.2b).
        header_cfo = estimate_header_cfo(header_samples, self.sample_rate)
        # once precise long-baseline estimates flow in, stop letting the
        # noisy (~100 Hz) within-header measurements perturb the average
        raw_weight = self.cfo_tracker.alpha if self._last_rotation_phase is None else 0.02
        self.cfo_tracker.update(header_cfo, weight=raw_weight)
        if self._last_rotation_phase is not None:
            dt = float(header_time) - self._last_rotation_time
            if dt > 0:
                expected = 2.0 * np.pi * self.cfo_tracker.estimate_hz * dt
                measured = phase - self._last_rotation_phase
                wraps = np.round((expected - measured) / (2.0 * np.pi))
                refined = (measured + 2.0 * np.pi * wraps) / (2.0 * np.pi * dt)
                # long-baseline estimates are ~100x more precise than the
                # 6.4 us within-header estimate; weight them accordingly
                self.cfo_tracker.update(refined, weight=0.5)

        self._last_rotation_phase = phase
        self._last_rotation_time = float(header_time)
        cfo_residual = header_cfo - float(self.cfo_tracker.estimate_hz)
        self._obs_headers.inc()
        self._obs_phase.observe(phase)
        self._obs_cfo.observe(float(self.cfo_tracker.estimate_hz))
        self._obs_cfo_residual.observe(cfo_residual)
        span.record(
            phase_offset_rad=phase,
            cfo_estimate_hz=float(self.cfo_tracker.estimate_hz),
            cfo_residual_hz=cfo_residual,
        )
        return SyncObservation(
            rotation=rotation,
            cfo_hz=float(self.cfo_tracker.estimate_hz),
            header_time=float(header_time),
            channel=channel,
        )

    def correction(self, times: np.ndarray, observation: SyncObservation) -> np.ndarray:
        """Per-sample transmit phase correction for a joint transmission.

        The slave multiplies its transmitted signal by
        ``rotation * exp(j 2 pi cfo_avg (t - t_header))`` — the direct phase
        measurement re-anchors the phase; the averaged CFO keeps it aligned
        through the packet (bounding accumulation to one packet duration).
        """
        times = np.asarray(times, dtype=float)
        elapsed = times - observation.header_time
        ramp = np.exp(2j * np.pi * observation.cfo_hz * elapsed)
        return observation.rotation * ramp

    def correction_without_inpacket_tracking(
        self, times: np.ndarray, observation: SyncObservation
    ) -> np.ndarray:
        """Ablation: re-anchor at the header but don't track within the packet."""
        times = np.asarray(times, dtype=float)
        return np.full(times.shape, observation.rotation, dtype=complex)


class NaiveCfoExtrapolator:
    """The strawman of §5.2b: predict phase as (measured CFO) x (elapsed time).

    One initial CFO measurement with error ``cfo_error_hz`` is used to
    extrapolate the phase correction forever.  The phase error grows as
    ``2 pi * cfo_error * t`` — 100 Hz of error costs pi radians within 20 ms,
    which is why MegaMIMO re-measures phase at every packet instead.
    """

    def __init__(self, true_cfo_hz: float, cfo_error_hz: float, reference_time: float = 0.0):
        self.estimated_cfo_hz = float(true_cfo_hz) + float(cfo_error_hz)
        self.true_cfo_hz = float(true_cfo_hz)
        self.reference_time = float(reference_time)

    def correction(self, times: np.ndarray) -> np.ndarray:
        """Extrapolated phase correction at the given absolute times."""
        times = np.asarray(times, dtype=float)
        return np.exp(
            2j * np.pi * self.estimated_cfo_hz * (times - self.reference_time)
        )

    def phase_error(self, times: np.ndarray) -> np.ndarray:
        """Accumulated misalignment (radians) of the extrapolation."""
        times = np.asarray(times, dtype=float)
        return (
            2.0
            * np.pi
            * (self.estimated_cfo_hz - self.true_cfo_hz)
            * (times - self.reference_time)
        )
